#include "lesslog/util/stats.hpp"

#include <algorithm>
#include <cassert>

namespace lesslog::util {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  assert(q >= 0.0 && q <= 100.0);
  assert(std::is_sorted(sorted.begin(), sorted.end()));
  if (sorted.empty()) return 0.0;
  const double rank = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return percentile_sorted(samples, q);
}

double gini(std::vector<double> xs) {
  if (xs.size() < 2) return 0.0;
  std::sort(xs.begin(), xs.end());
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    assert(xs[i] >= 0.0);
    weighted += static_cast<double>(i + 1) * xs[i];
    total += xs[i];
  }
  if (total == 0.0) return 0.0;
  const auto n = static_cast<double>(xs.size());
  return (2.0 * weighted) / (n * total) - (n + 1.0) / n;
}

double jain_fairness(const std::vector<double>& xs) {
  if (xs.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

}  // namespace lesslog::util
