#include "lesslog/util/status_word.hpp"

#include <cassert>

namespace lesslog::util {

StatusWord::StatusWord(int m)
    : m_(m), words_((space_size(m) + 63u) / 64u, 0) {
  assert(valid_width(m));
}

StatusWord::StatusWord(int m, std::uint32_t live_count) : StatusWord(m) {
  assert(live_count <= capacity());
  for (std::uint32_t pid = 0; pid < live_count; ++pid) set_live(pid);
}

void StatusWord::set_live(std::uint32_t pid) noexcept {
  assert(pid < capacity());
  std::uint64_t& w = words_[pid >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (pid & 63u);
  if ((w & bit) == 0) {
    w |= bit;
    ++live_;
  }
}

void StatusWord::set_dead(std::uint32_t pid) noexcept {
  assert(pid < capacity());
  std::uint64_t& w = words_[pid >> 6];
  const std::uint64_t bit = std::uint64_t{1} << (pid & 63u);
  if ((w & bit) != 0) {
    w &= ~bit;
    --live_;
  }
}

std::vector<std::uint32_t> StatusWord::live_pids() const {
  std::vector<std::uint32_t> out;
  out.reserve(live_);
  for (std::uint32_t pid = 0; pid < capacity(); ++pid) {
    if (is_live(pid)) out.push_back(pid);
  }
  return out;
}

std::vector<std::uint32_t> StatusWord::dead_pids() const {
  std::vector<std::uint32_t> out;
  out.reserve(dead_count());
  for (std::uint32_t pid = 0; pid < capacity(); ++pid) {
    if (!is_live(pid)) out.push_back(pid);
  }
  return out;
}

std::uint32_t StatusWord::first_dead() const noexcept {
  for (std::uint32_t pid = 0; pid < capacity(); ++pid) {
    if (!is_live(pid)) return pid;
  }
  return capacity();
}

}  // namespace lesslog::util
