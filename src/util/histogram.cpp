#include "lesslog/util/histogram.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace lesslog::util {

Histogram::Histogram(double lo, double bucket_width, std::size_t bucket_count)
    : lo_(lo), width_(bucket_width), counts_(bucket_count, 0) {
  assert(bucket_width > 0.0 && bucket_count > 0);
}

void Histogram::add(double x) noexcept { add_n(x, 1); }

void Histogram::add_n(double x, std::int64_t n) noexcept {
  // Clamp in double space BEFORE converting: float-to-integer conversion
  // of a value outside the destination's range is UB, so a sample far
  // beyond the last bucket (or +inf) must be capped while still a double.
  // NaN fails both comparisons and lands in bucket 0 with the rest of
  // the not-above-lo_ samples.
  const double raw = (x - lo_) / width_;
  const double max_idx = static_cast<double>(counts_.size() - 1);
  std::size_t idx = 0;
  if (raw >= max_idx) {
    idx = counts_.size() - 1;
  } else if (raw > 0.0) {
    idx = static_cast<std::size_t>(raw);
  }
  counts_[idx] += n;
  total_ += n;
}

std::string Histogram::render(int max_width) const {
  std::size_t last = counts_.size();
  while (last > 1 && counts_[last - 1] == 0) --last;
  const std::int64_t peak =
      *std::max_element(counts_.begin(), counts_.begin() + static_cast<std::ptrdiff_t>(last));
  std::ostringstream out;
  for (std::size_t i = 0; i < last; ++i) {
    const double bar_frac =
        peak > 0 ? static_cast<double>(counts_[i]) / static_cast<double>(peak)
                 : 0.0;
    const int bar = static_cast<int>(std::lround(bar_frac * max_width));
    out << "[" << bucket_lo(i) << ", " << bucket_lo(i + 1) << ") "
        << std::string(static_cast<std::size_t>(bar), '#') << " " << counts_[i]
        << "\n";
  }
  return out.str();
}

}  // namespace lesslog::util
