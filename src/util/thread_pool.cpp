#include "lesslog/util/thread_pool.hpp"

#include <algorithm>

namespace lesslog::util {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // only reachable when stopping_
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard lock(mu_);
      if (--in_flight_ == 0) idle_cv_.notify_all();
    }
  }
}

void parallel_for(ThreadPool& pool, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  const std::size_t chunks = std::min<std::size_t>(pool.size() * 4, n);
  const std::size_t per_chunk = (n + chunks - 1) / chunks;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t lo = c * per_chunk;
    const std::size_t hi = std::min(lo + per_chunk, n);
    if (lo >= hi) break;
    pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }
  pool.wait_idle();
}

}  // namespace lesslog::util
