#include "lesslog/core/virtual_tree.hpp"

#include <cassert>

namespace lesslog::core {

VirtualTree::VirtualTree(int m) : m_(m) { assert(util::valid_width(m)); }

std::vector<Vid> VirtualTree::children(Vid v) const {
  const int count = child_count(v);
  std::vector<Vid> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) out.push_back(child(v, k));
  return out;
}

Vid VirtualTree::child(Vid v, int k) const noexcept {
  const int count = child_count(v);
  assert(k >= 0 && k < count);
  // The leading 1-run occupies bits [m-count, m-1]. Clearing the lowest bit
  // of the run yields the numerically largest child, so the k-th child in
  // descending order clears bit (m - count + k).
  return Vid{util::clear_bit(v.value(), m_ - count + k)};
}

bool VirtualTree::in_subtree(Vid descendant, Vid ancestor) const noexcept {
  const int run = child_count(ancestor);
  // Below the leading 1-run the two VIDs must agree; within the run the
  // descendant may have any bit pattern (each pattern is reachable by
  // clearing a subset of the run, and there are exactly subtree_size(a)
  // of them).
  const std::uint32_t low_mask = util::mask_of(m_) >> run;
  return (descendant.value() & low_mask) == (ancestor.value() & low_mask);
}

std::vector<Vid> VirtualTree::path_to_root(Vid v) const {
  std::vector<Vid> out;
  out.reserve(static_cast<std::size_t>(depth(v)) + 1u);
  out.push_back(v);
  while (!is_root(out.back())) out.push_back(parent(out.back()));
  return out;
}

std::vector<Vid> VirtualTree::subtree_vids(Vid v) const {
  const int run = child_count(v);
  const std::uint32_t low_part = v.value() & (util::mask_of(m_) >> run);
  std::vector<Vid> out;
  out.reserve(subtree_size(v));
  // Enumerate the 2^run settings of the leading run, high-to-low, so the
  // result is in descending VID order with v itself first.
  for (std::uint32_t s = util::space_size(run); s-- > 0;) {
    out.push_back(Vid{(s << (m_ - run)) | low_part});
  }
  return out;
}

}  // namespace lesslog::core
