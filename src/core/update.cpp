#include "lesslog/core/update.hpp"

#include <deque>
#include <unordered_set>

#include "lesslog/core/children_list.hpp"
#include "lesslog/core/find_live_node.hpp"

namespace lesslog::core {

UpdateResult propagate_update(const LookupTree& tree,
                              const util::StatusWord& live,
                              const std::function<bool(Pid)>& holds_copy) {
  UpdateResult result;

  // Find the broadcast origin: the live root, else the stand-in holder.
  Pid origin{};
  const Pid root = tree.root();
  if (live.is_live(root.value())) {
    origin = root;
  } else {
    const std::optional<Pid> holder = insertion_target(tree, live);
    if (!holder.has_value()) return result;  // empty system
    origin = *holder;
  }
  result.origin = origin;
  if (!holds_copy(origin)) {
    // With a dead root the origin's own copy may be absent if the file was
    // never inserted; nothing to propagate. (A live root always receives
    // the update first per the paper, so we still broadcast from it.)
    if (!live.is_live(root.value())) return result;
  }

  std::unordered_set<Pid> seen;
  std::deque<Pid> queue;
  const auto visit = [&](Pid p) {
    if (seen.insert(p).second && holds_copy(p)) {
      result.updated.push_back(p);
      queue.push_back(p);
    }
  };
  visit(origin);
  // With a dead root, replicas may also hang off the *root's* children list
  // (the proportional placement rule). The paper's update bypasses the dead
  // root and forwards to its children list, so seed the broadcast there too.
  if (!live.is_live(root.value())) {
    for (Pid child : children_list(tree, root, live)) {
      ++result.messages;
      visit(child);
    }
  }
  while (!queue.empty()) {
    const Pid current = queue.front();
    queue.pop_front();
    for (Pid child : children_list(tree, current, live)) {
      ++result.messages;
      visit(child);
    }
  }
  return result;
}

}  // namespace lesslog::core
