#include "lesslog/core/children_list.hpp"

#include <algorithm>

namespace lesslog::core {

namespace {

// Depth-first expansion: live children are collected; dead children are
// replaced by their own children, recursively. A dead leaf contributes
// nothing. The recursion is bounded by the subtree size of the start node.
void expand(const VirtualTree& vt, Vid v,
            const std::function<Pid(Vid)>& pid_of,
            const util::StatusWord& live, std::vector<Vid>& out) {
  for (Vid child : vt.children(v)) {
    if (live.is_live(pid_of(child).value())) {
      out.push_back(child);
    } else {
      expand(vt, child, pid_of, live, out);
    }
  }
}

std::vector<Vid> collect(const LookupTree& tree, Pid k,
                         const util::StatusWord& live) {
  return expand_children_list(
      tree.virtual_tree(), tree.vid_of(k),
      [&tree](Vid v) { return tree.pid_of(v); }, live);
}

}  // namespace

std::vector<Vid> expand_children_list(const VirtualTree& vt, Vid v,
                                      const std::function<Pid(Vid)>& pid_of,
                                      const util::StatusWord& live) {
  std::vector<Vid> vids;
  expand(vt, v, pid_of, live, vids);
  // The paper sorts the final list "by the VID" — descending, so the node
  // with the most offspring comes first (Property 3).
  std::sort(vids.begin(), vids.end(),
            [](Vid a, Vid b) { return a.value() > b.value(); });
  return vids;
}

std::vector<Pid> children_list(const LookupTree& tree, Pid k,
                               const util::StatusWord& live) {
  const std::vector<Vid> vids = collect(tree, k, live);
  std::vector<Pid> out;
  out.reserve(vids.size());
  for (Vid v : vids) out.push_back(tree.pid_of(v));
  return out;
}

std::vector<WeightedChild> weighted_children_list(
    const LookupTree& tree, Pid k, const util::StatusWord& live) {
  const std::vector<Vid> vids = collect(tree, k, live);
  std::vector<WeightedChild> out;
  out.reserve(vids.size());
  for (Vid v : vids) {
    out.push_back(
        WeightedChild{tree.pid_of(v), tree.virtual_tree().subtree_size(v)});
  }
  return out;
}

}  // namespace lesslog::core
