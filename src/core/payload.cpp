#include "lesslog/core/payload.hpp"

#include "lesslog/util/rng.hpp"

namespace lesslog::core {

Payload make_payload(FileId f, std::uint64_t version, std::size_t size) {
  Payload payload(size);
  std::uint64_t state = f.key() ^ (version * 0x9e3779b97f4a7c15ULL) ^
                        0x1e55106b10b5ULL;
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < size; ++i) {
    if (i % 8 == 0) word = util::splitmix64(state);
    payload[i] = static_cast<std::uint8_t>(word >> (8 * (i % 8)));
  }
  return payload;
}

std::uint32_t payload_checksum(const Payload& payload) noexcept {
  return util::crc32(std::span<const std::uint8_t>(payload));
}

bool verify_payload(FileId f, std::uint64_t version, const Payload& payload) {
  const Payload expected = make_payload(f, version, payload.size());
  return expected == payload &&
         payload_checksum(expected) == payload_checksum(payload);
}

}  // namespace lesslog::core
