#include "lesslog/core/snapshot.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

namespace lesslog::core {

namespace {

constexpr std::uint32_t kMagic = 0x4C4C4F47u;  // "LLOG"

void put_u32(std::ostream& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.put(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::ostream& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.put(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

std::uint32_t get_u32(std::istream& in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof()) {
      throw std::runtime_error("snapshot truncated");
    }
    v |= static_cast<std::uint32_t>(c & 0xFF) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(std::istream& in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    const int c = in.get();
    if (c == std::char_traits<char>::eof()) {
      throw std::runtime_error("snapshot truncated");
    }
    v |= static_cast<std::uint64_t>(c & 0xFF) << (8 * i);
  }
  return v;
}

void put_bytes(std::ostream& out, const std::vector<std::uint8_t>& bytes) {
  put_u64(out, bytes.size());
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::vector<std::uint8_t> get_bytes(std::istream& in) {
  const std::uint64_t size = get_u64(in);
  if (size > (std::uint64_t{1} << 32)) {
    throw std::runtime_error("snapshot payload size implausible");
  }
  std::vector<std::uint8_t> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  if (static_cast<std::uint64_t>(in.gcount()) != size) {
    throw std::runtime_error("snapshot truncated");
  }
  return bytes;
}

}  // namespace

void save_snapshot(const System& sys, std::ostream& out) {
  put_u32(out, kMagic);
  put_u32(out, kSnapshotVersion);
  put_u32(out, static_cast<std::uint32_t>(sys.cfg_.m));
  put_u32(out, static_cast<std::uint32_t>(sys.cfg_.b));
  put_u64(out, sys.cfg_.seed);
  put_u64(out, sys.cfg_.payload_size);

  // Liveness bitmap as an explicit PID list.
  const std::vector<std::uint32_t> live = sys.live_.live_pids();
  put_u32(out, static_cast<std::uint32_t>(live.size()));
  for (const std::uint32_t p : live) put_u32(out, p);

  put_u64(out, sys.next_file_key_);
  put_u64(out, static_cast<std::uint64_t>(sys.lookup_messages_));
  put_u64(out, static_cast<std::uint64_t>(sys.maintenance_messages_));
  put_u64(out, static_cast<std::uint64_t>(sys.faults_));

  put_u64(out, sys.files_.size());
  for (const auto& [f, fm] : sys.files_) {
    put_u64(out, f.key());
    put_u32(out, fm.target.value());
    put_u64(out, fm.version);
    put_u32(out, fm.lost ? 1u : 0u);
    put_u32(out, static_cast<std::uint32_t>(fm.holders.size()));
    for (const Pid holder : fm.holders) {
      const auto info = sys.nodes_[holder.value()].store().info(f);
      if (!info.has_value()) {
        throw std::runtime_error("snapshot: holder without a copy");
      }
      put_u32(out, holder.value());
      put_u32(out, info->kind == CopyKind::kInserted ? 1u : 0u);
      put_u64(out, info->version);
      put_u64(out, info->access_count);
      put_bytes(out, info->data);
    }
  }
  if (!out) throw std::runtime_error("snapshot: stream write failure");
}

System load_snapshot(std::istream& in) {
  if (get_u32(in) != kMagic) {
    throw std::runtime_error("snapshot: bad magic");
  }
  if (get_u32(in) != kSnapshotVersion) {
    throw std::runtime_error("snapshot: unsupported version");
  }
  System::Config cfg;
  cfg.m = static_cast<int>(get_u32(in));
  cfg.b = static_cast<int>(get_u32(in));
  cfg.seed = get_u64(in);
  cfg.payload_size = static_cast<std::size_t>(get_u64(in));
  if (!util::valid_width(cfg.m) || cfg.b < 0 || cfg.b >= cfg.m) {
    throw std::runtime_error("snapshot: invalid configuration");
  }
  System sys(cfg);

  const std::uint32_t live_count = get_u32(in);
  if (live_count > util::space_size(cfg.m)) {
    throw std::runtime_error("snapshot: live count out of range");
  }
  for (std::uint32_t i = 0; i < live_count; ++i) {
    const std::uint32_t p = get_u32(in);
    if (!util::fits(p, cfg.m)) {
      throw std::runtime_error("snapshot: PID out of range");
    }
    sys.live_.set_live(p);
  }

  sys.next_file_key_ = get_u64(in);
  sys.lookup_messages_ = static_cast<std::int64_t>(get_u64(in));
  sys.maintenance_messages_ = static_cast<std::int64_t>(get_u64(in));
  sys.faults_ = static_cast<std::int64_t>(get_u64(in));

  const std::uint64_t file_count = get_u64(in);
  for (std::uint64_t i = 0; i < file_count; ++i) {
    const FileId f{get_u64(in)};
    System::FileMeta fm;
    const std::uint32_t target = get_u32(in);
    if (!util::fits(target, cfg.m)) {
      throw std::runtime_error("snapshot: target out of range");
    }
    fm.target = Pid{target};
    fm.version = get_u64(in);
    fm.lost = get_u32(in) != 0;
    const std::uint32_t holder_count = get_u32(in);
    for (std::uint32_t h = 0; h < holder_count; ++h) {
      const std::uint32_t pid = get_u32(in);
      if (!util::fits(pid, cfg.m)) {
        throw std::runtime_error("snapshot: holder out of range");
      }
      const bool inserted = get_u32(in) != 0;
      const std::uint64_t version = get_u64(in);
      const std::uint64_t access = get_u64(in);
      std::vector<std::uint8_t> data = get_bytes(in);
      FileStore& store = sys.nodes_[pid].store();
      if (inserted) {
        store.put_inserted(f, version, std::move(data));
      } else {
        store.put_replica(f, version, std::move(data));
      }
      store.set_access_count(f, access);
      fm.holders.insert(Pid{pid});
    }
    sys.files_.emplace(f, std::move(fm));
  }
  return sys;
}

}  // namespace lesslog::core
