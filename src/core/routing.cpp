#include "lesslog/core/routing.hpp"

#include <cassert>

namespace lesslog::core {

std::optional<Pid> first_alive_ancestor(const LookupTree& tree, Pid k,
                                        const util::StatusWord& live) {
  const VirtualTree& vt = tree.virtual_tree();
  Vid v = tree.vid_of(k);
  while (!vt.is_root(v)) {
    v = vt.parent(v);
    const Pid p = tree.pid_of(v);
    if (live.is_live(p.value())) return p;
  }
  return std::nullopt;
}

std::vector<Pid> ancestor_chain(const LookupTree& tree, Pid k,
                                const util::StatusWord& live) {
  std::vector<Pid> chain{k};
  while (true) {
    const std::optional<Pid> up = first_alive_ancestor(tree, chain.back(), live);
    if (!up.has_value()) break;
    chain.push_back(*up);
  }
  return chain;
}

AncestorTable build_ancestor_table(const LookupTree& tree,
                                   const util::StatusWord& live) {
  const int m = tree.width();
  const std::uint32_t slots = util::space_size(m);
  AncestorTable table;
  table.next.assign(slots, AncestorTable::kNone);
  // Parent VIDs are numerically larger than their children (Property 2
  // sets a bit), so a descending VID scan visits every parent before its
  // children and the dead-parent case can reuse the parent's own entry.
  for (std::uint32_t v = slots - 1; v-- > 0;) {
    const std::uint32_t parent_vid = util::set_highest_zero(v, m);
    const Pid parent = tree.pid_of(Vid{parent_vid});
    const Pid self = tree.pid_of(Vid{v});
    table.next[self.value()] = live.is_live(parent.value())
                                   ? parent.value()
                                   : table.next[parent.value()];
  }
  table.root = tree.root();
  table.root_live = live.is_live(table.root.value());
  if (!table.root_live) {
    if (const std::optional<Pid> holder = insertion_target(tree, live)) {
      table.fallback_holder = holder->value();
    }
  }
  return table;
}

RouteResult route_get(const LookupTree& tree, Pid k,
                      const util::StatusWord& live,
                      const HasCopyFn& has_copy) {
  assert(live.is_live(k.value()) && "requests originate at live nodes");
  RouteResult result;
  result.path.push_back(k);
  if (has_copy(k)) {
    result.served_by = k;
    return result;
  }
  Pid current = k;
  while (true) {
    const std::optional<Pid> up = first_alive_ancestor(tree, current, live);
    if (!up.has_value()) break;
    current = *up;
    result.path.push_back(current);
    if (has_copy(current)) {
      result.served_by = current;
      return result;
    }
  }
  // The chain is exhausted without finding a copy. If the root is live we
  // visited it, so the file simply does not exist anywhere on the path and
  // the target itself lacks it -> fault. With a dead root, the original
  // copy lives at the FINDLIVENODE(r, r) node; jump there.
  if (!live.is_live(tree.root().value())) {
    const std::optional<Pid> holder = insertion_target(tree, live);
    if (holder.has_value() && *holder != current) {
      result.used_fallback = true;
      result.path.push_back(*holder);
      if (has_copy(*holder)) result.served_by = *holder;
    } else if (holder.has_value() && has_copy(*holder)) {
      // Already standing on the holder (it was the top of our chain).
      result.served_by = *holder;
    }
  }
  return result;
}

}  // namespace lesslog::core
