// Node is header-only today; this TU anchors the type in the library and is
// the natural home for future out-of-line members.
#include "lesslog/core/node.hpp"

namespace lesslog::core {

static_assert(sizeof(Node) > 0);

}  // namespace lesslog::core
