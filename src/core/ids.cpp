#include "lesslog/core/ids.hpp"

namespace lesslog::core {

std::string to_string(Pid pid) { return "P(" + std::to_string(pid.value()) + ")"; }

std::string to_binary(Vid vid, int m) {
  return util::to_binary(vid.value(), m);
}

}  // namespace lesslog::core
