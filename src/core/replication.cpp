#include "lesslog/core/replication.hpp"

#include <cassert>

#include "lesslog/core/find_live_node.hpp"

namespace lesslog::core {

std::optional<Pid> first_child_without_copy(const LookupTree& tree, Pid k,
                                            const util::StatusWord& live,
                                            const HoldsCopyFn& holds_copy) {
  for (Pid child : children_list(tree, k, live)) {
    if (!holds_copy(child)) return child;
  }
  return std::nullopt;
}

std::uint32_t live_offspring_count(const LookupTree& tree, Pid k,
                                   const util::StatusWord& live) {
  const VirtualTree& vt = tree.virtual_tree();
  std::uint32_t count = 0;
  for (Vid v : vt.subtree_vids(tree.vid_of(k))) {
    const Pid p = tree.pid_of(v);
    if (p != k && live.is_live(p.value())) ++count;
  }
  return count;
}

std::optional<Placement> replicate_target(const LookupTree& tree, Pid k,
                                          const util::StatusWord& live,
                                          const HoldsCopyFn& holds_copy,
                                          util::Rng& rng) {
  assert(live.is_live(k.value()) && "only live nodes become overloaded");
  const bool is_target = tree.is_root(k);
  if (is_target || live_vid_above(tree, k, live)) {
    // The overload can only come from P(k)'s own offspring (GETFILE routes
    // every request upward), so shed into P(k)'s children list.
    const std::optional<Pid> c =
        first_child_without_copy(tree, k, live, holds_copy);
    if (!c.has_value()) return std::nullopt;
    return Placement{*c, PlacementSource::kOwnChildren};
  }

  // P(k) is the highest live VID: it stands in for the dead root, so
  // requests may arrive from the whole system. Split proportionally between
  // P(k)'s children list and the dead root's children list.
  const std::uint32_t own = live_offspring_count(tree, k, live);
  const std::uint32_t total_live = live.live_count();
  // "the rest nodes": live nodes that are neither P(k) nor its offspring.
  const std::uint32_t rest = total_live - own - 1u;
  const double denom = static_cast<double>(own + rest);
  const bool pick_own =
      denom == 0.0 ||
      rng.uniform01() < static_cast<double>(own) / denom;

  const Pid root = tree.root();
  const auto try_list = [&](Pid list_owner,
                            PlacementSource source) -> std::optional<Placement> {
    for (Pid child : children_list(tree, list_owner, live)) {
      if (child != k && !holds_copy(child)) return Placement{child, source};
    }
    return std::nullopt;
  };

  if (pick_own) {
    if (auto p = try_list(k, PlacementSource::kOwnChildren)) return p;
    return try_list(root, PlacementSource::kRootChildren);
  }
  if (auto p = try_list(root, PlacementSource::kRootChildren)) return p;
  return try_list(k, PlacementSource::kOwnChildren);
}

}  // namespace lesslog::core
