#include "lesslog/core/lookup_tree.hpp"

namespace lesslog::core {

std::vector<Pid> LookupTree::children(Pid p) const {
  const std::vector<Vid> vids = tree_.children(vid_of(p));
  std::vector<Pid> out;
  out.reserve(vids.size());
  for (Vid v : vids) out.push_back(pid_of(v));
  return out;
}

std::vector<Pid> LookupTree::path_to_root(Pid p) const {
  const std::vector<Vid> vids = tree_.path_to_root(vid_of(p));
  std::vector<Pid> out;
  out.reserve(vids.size());
  for (Vid v : vids) out.push_back(pid_of(v));
  return out;
}

}  // namespace lesslog::core
