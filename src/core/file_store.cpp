#include "lesslog/core/file_store.hpp"

namespace lesslog::core {

std::optional<CopyInfo> FileStore::info(FileId f) const {
  const auto it = copies_.find(f);
  if (it == copies_.end()) return std::nullopt;
  return it->second;
}

void FileStore::put_inserted(FileId f, std::uint64_t version,
                             std::vector<std::uint8_t> data) {
  copies_[f] = CopyInfo{CopyKind::kInserted, version, 0, std::move(data)};
}

void FileStore::put_replica(FileId f, std::uint64_t version,
                            std::vector<std::uint8_t> data) {
  auto [it, added] = copies_.try_emplace(
      f, CopyInfo{CopyKind::kReplica, version, 0, std::move(data)});
  (void)it;
  (void)added;
}

const std::vector<std::uint8_t>* FileStore::payload(FileId f) const {
  const auto it = copies_.find(f);
  return it == copies_.end() ? nullptr : &it->second.data;
}

bool FileStore::set_payload(FileId f, std::vector<std::uint8_t> data) {
  const auto it = copies_.find(f);
  if (it == copies_.end()) return false;
  it->second.data = std::move(data);
  return true;
}

bool FileStore::erase(FileId f) { return copies_.erase(f) > 0; }

bool FileStore::apply_update(FileId f, std::uint64_t version,
                             std::vector<std::uint8_t> data) {
  const auto it = copies_.find(f);
  if (it == copies_.end()) return false;
  it->second.version = version;
  if (!data.empty()) it->second.data = std::move(data);
  return true;
}

void FileStore::record_access(FileId f) {
  const auto it = copies_.find(f);
  if (it != copies_.end()) ++it->second.access_count;
}

bool FileStore::set_access_count(FileId f, std::uint64_t count) {
  const auto it = copies_.find(f);
  if (it == copies_.end()) return false;
  it->second.access_count = count;
  return true;
}

void FileStore::reset_access_counts() noexcept {
  for (auto& [id, info] : copies_) info.access_count = 0;
}

std::vector<FileId> FileStore::prune_cold_replicas(std::uint64_t threshold) {
  std::vector<FileId> pruned;
  for (auto it = copies_.begin(); it != copies_.end();) {
    if (it->second.kind == CopyKind::kReplica &&
        it->second.access_count < threshold) {
      pruned.push_back(it->first);
      it = copies_.erase(it);
    } else {
      ++it;
    }
  }
  return pruned;
}

std::vector<FileId> FileStore::inserted_files() const {
  std::vector<FileId> out;
  for (const auto& [id, info] : copies_) {
    if (info.kind == CopyKind::kInserted) out.push_back(id);
  }
  return out;
}

std::vector<FileId> FileStore::replica_files() const {
  std::vector<FileId> out;
  for (const auto& [id, info] : copies_) {
    if (info.kind == CopyKind::kReplica) out.push_back(id);
  }
  return out;
}

}  // namespace lesslog::core
