#include "lesslog/core/file_store.hpp"

#include <cassert>

namespace lesslog::core {

void FileStore::index_put(std::uint64_t key, CopyInfo* value) {
  // Grow at 50% load; per-node catalogs are small, so rebuilds are rare
  // and cheap.
  if (index_.empty() || (copies_.size() + 1) * 2 > index_.size()) {
    rebuild_index();
  }
  std::size_t i = home_slot(key);
  while (index_[i].value != nullptr) {
    if (index_[i].key == key) {
      index_[i].value = value;
      return;
    }
    i = (i + 1) & (index_.size() - 1);
  }
  index_[i] = IndexSlot{key, value};
}

void FileStore::index_erase(std::uint64_t key) noexcept {
  assert(!index_.empty());
  const std::size_t mask = index_.size() - 1;
  std::size_t i = home_slot(key);
  while (index_[i].key != key || index_[i].value == nullptr) {
    if (index_[i].value == nullptr) return;  // not present
    i = (i + 1) & mask;
  }
  // Backward-shift deletion keeps probe chains tombstone-free: any entry
  // further down the cluster whose home slot lies at or before the hole
  // moves back into it.
  std::size_t hole = i;
  std::size_t j = i;
  for (;;) {
    j = (j + 1) & mask;
    if (index_[j].value == nullptr) break;
    const std::size_t home = home_slot(index_[j].key);
    if (((j - home) & mask) >= ((j - hole) & mask)) {
      index_[hole] = index_[j];
      hole = j;
    }
  }
  index_[hole] = IndexSlot{};
}

void FileStore::rebuild_index() {
  std::size_t cap = 16;
  while (copies_.size() * 2 >= cap) cap *= 2;
  index_.assign(cap, IndexSlot{});
  for (auto& [id, info] : copies_) {
    std::size_t i = home_slot(id.key());
    while (index_[i].value != nullptr) i = (i + 1) & (cap - 1);
    index_[i] = IndexSlot{id.key(), &info};
  }
}

std::optional<CopyInfo> FileStore::info(FileId f) const {
  const CopyInfo* c = lookup(f);
  if (c == nullptr) return std::nullopt;
  return *c;
}

std::optional<std::uint64_t> FileStore::serve(FileId f) {
  CopyInfo* c = lookup(f);
  if (c == nullptr) return std::nullopt;
  ++c->access_count;
  return c->version;
}

void FileStore::put_inserted(FileId f, std::uint64_t version,
                             std::vector<std::uint8_t> data) {
  const auto [it, added] = copies_.insert_or_assign(
      f, CopyInfo{CopyKind::kInserted, version, 0, std::move(data)});
  if (added) index_put(f.key(), &it->second);
}

void FileStore::put_replica(FileId f, std::uint64_t version,
                            std::vector<std::uint8_t> data) {
  const auto [it, added] = copies_.try_emplace(
      f, CopyInfo{CopyKind::kReplica, version, 0, std::move(data)});
  if (added) index_put(f.key(), &it->second);
}

const std::vector<std::uint8_t>* FileStore::payload(FileId f) const {
  const CopyInfo* c = lookup(f);
  return c == nullptr ? nullptr : &c->data;
}

bool FileStore::set_payload(FileId f, std::vector<std::uint8_t> data) {
  CopyInfo* c = lookup(f);
  if (c == nullptr) return false;
  c->data = std::move(data);
  return true;
}

bool FileStore::erase(FileId f) {
  if (copies_.erase(f) == 0) return false;
  index_erase(f.key());
  return true;
}

bool FileStore::apply_update(FileId f, std::uint64_t version,
                             std::vector<std::uint8_t> data) {
  CopyInfo* c = lookup(f);
  if (c == nullptr) return false;
  c->version = version;
  if (!data.empty()) c->data = std::move(data);
  return true;
}

void FileStore::record_access(FileId f) {
  CopyInfo* c = lookup(f);
  if (c != nullptr) ++c->access_count;
}

bool FileStore::set_access_count(FileId f, std::uint64_t count) {
  CopyInfo* c = lookup(f);
  if (c == nullptr) return false;
  c->access_count = count;
  return true;
}

void FileStore::reset_access_counts() noexcept {
  for (auto& [id, info] : copies_) info.access_count = 0;
}

std::vector<FileId> FileStore::prune_cold_replicas(std::uint64_t threshold) {
  std::vector<FileId> pruned;
  for (auto it = copies_.begin(); it != copies_.end();) {
    if (it->second.kind == CopyKind::kReplica &&
        it->second.access_count < threshold) {
      pruned.push_back(it->first);
      index_erase(it->first.key());
      it = copies_.erase(it);
    } else {
      ++it;
    }
  }
  return pruned;
}

std::vector<FileId> FileStore::inserted_files() const {
  std::vector<FileId> out;
  for (const auto& [id, info] : copies_) {
    if (info.kind == CopyKind::kInserted) out.push_back(id);
  }
  return out;
}

std::vector<FileId> FileStore::replica_files() const {
  std::vector<FileId> out;
  for (const auto& [id, info] : copies_) {
    if (info.kind == CopyKind::kReplica) out.push_back(id);
  }
  return out;
}

}  // namespace lesslog::core
