#include "lesslog/core/file_store.hpp"

#include <cassert>

namespace lesslog::core {

std::uint32_t FileStore::acquire_cell() {
  if (!free_.empty()) {
    const std::uint32_t s = free_.back();
    free_.pop_back();
    return s;
  }
  slab_.emplace_back();
  return static_cast<std::uint32_t>(slab_.size() - 1);
}

void FileStore::release_cell(std::uint32_t s) noexcept {
  Entry& e = slab_[s];
  e.occupied = false;
  e.info = CopyInfo{};  // drop the payload bytes now, not at reuse time
  free_.push_back(s);
}

void FileStore::index_put(std::uint64_t key, std::uint32_t slot) {
  // Grow at 50% load; per-node catalogs are small, so rebuilds are rare
  // and cheap.
  if (index_.empty() || (size_ + 1) * 2 > index_.size()) {
    rebuild_index();
  }
  std::size_t i = home_slot(key);
  while (index_[i].slot != kNoSlot) {
    if (index_[i].key == key) {
      index_[i].slot = slot;
      return;
    }
    i = (i + 1) & (index_.size() - 1);
  }
  index_[i] = IndexSlot{key, slot};
}

void FileStore::index_erase(std::uint64_t key) noexcept {
  assert(!index_.empty());
  const std::size_t mask = index_.size() - 1;
  std::size_t i = home_slot(key);
  while (index_[i].key != key || index_[i].slot == kNoSlot) {
    if (index_[i].slot == kNoSlot) return;  // not present
    i = (i + 1) & mask;
  }
  // Backward-shift deletion keeps probe chains tombstone-free: any entry
  // further down the cluster whose home slot lies at or before the hole
  // moves back into it.
  std::size_t hole = i;
  std::size_t j = i;
  for (;;) {
    j = (j + 1) & mask;
    if (index_[j].slot == kNoSlot) break;
    const std::size_t home = home_slot(index_[j].key);
    if (((j - home) & mask) >= ((j - hole) & mask)) {
      index_[hole] = index_[j];
      hole = j;
    }
  }
  index_[hole] = IndexSlot{};
}

void FileStore::rebuild_index() {
  std::size_t cap = 16;
  while (size_ * 2 >= cap) cap *= 2;
  index_.assign(cap, IndexSlot{});
  for (std::uint32_t s = 0; s < slab_.size(); ++s) {
    if (!slab_[s].occupied) continue;
    std::size_t i = home_slot(slab_[s].id.key());
    while (index_[i].slot != kNoSlot) i = (i + 1) & (cap - 1);
    index_[i] = IndexSlot{slab_[s].id.key(), s};
  }
}

std::size_t FileStore::worst_probe_length() const noexcept {
  std::size_t worst = 0;
  const std::size_t mask = index_.empty() ? 0 : index_.size() - 1;
  for (std::size_t i = 0; i < index_.size(); ++i) {
    if (index_[i].slot == kNoSlot) continue;
    const std::size_t displacement = (i - home_slot(index_[i].key)) & mask;
    if (displacement > worst) worst = displacement;
  }
  return worst;
}

std::optional<CopyInfo> FileStore::info(FileId f) const {
  const CopyInfo* c = lookup(f);
  if (c == nullptr) return std::nullopt;
  return *c;
}

std::optional<std::uint64_t> FileStore::serve(FileId f) {
  CopyInfo* c = lookup(f);
  if (c == nullptr) return std::nullopt;
  ++c->access_count;
  return c->version;
}

void FileStore::put_inserted(FileId f, std::uint64_t version,
                             std::vector<std::uint8_t> data) {
  if (CopyInfo* c = lookup(f)) {
    *c = CopyInfo{CopyKind::kInserted, version, 0, std::move(data)};
    return;
  }
  const std::uint32_t s = acquire_cell();
  slab_[s].id = f;
  slab_[s].occupied = true;
  slab_[s].info = CopyInfo{CopyKind::kInserted, version, 0, std::move(data)};
  ++size_;
  index_put(f.key(), s);
}

void FileStore::put_replica(FileId f, std::uint64_t version,
                            std::vector<std::uint8_t> data) {
  if (lookup(f) != nullptr) return;
  const std::uint32_t s = acquire_cell();
  slab_[s].id = f;
  slab_[s].occupied = true;
  slab_[s].info = CopyInfo{CopyKind::kReplica, version, 0, std::move(data)};
  ++size_;
  index_put(f.key(), s);
}

const std::vector<std::uint8_t>* FileStore::payload(FileId f) const {
  const CopyInfo* c = lookup(f);
  return c == nullptr ? nullptr : &c->data;
}

bool FileStore::set_payload(FileId f, std::vector<std::uint8_t> data) {
  CopyInfo* c = lookup(f);
  if (c == nullptr) return false;
  c->data = std::move(data);
  return true;
}

bool FileStore::erase(FileId f) {
  const std::uint32_t s = slot_of(f.key());
  if (s == kNoSlot) return false;
  index_erase(f.key());
  release_cell(s);
  --size_;
  return true;
}

bool FileStore::apply_update(FileId f, std::uint64_t version,
                             std::vector<std::uint8_t> data) {
  CopyInfo* c = lookup(f);
  if (c == nullptr) return false;
  c->version = version;
  if (!data.empty()) c->data = std::move(data);
  return true;
}

void FileStore::record_access(FileId f) {
  CopyInfo* c = lookup(f);
  if (c != nullptr) ++c->access_count;
}

bool FileStore::set_access_count(FileId f, std::uint64_t count) {
  CopyInfo* c = lookup(f);
  if (c == nullptr) return false;
  c->access_count = count;
  return true;
}

void FileStore::reset_access_counts() noexcept {
  for (Entry& e : slab_) {
    if (e.occupied) e.info.access_count = 0;
  }
}

std::vector<FileId> FileStore::prune_cold_replicas(std::uint64_t threshold) {
  std::vector<FileId> pruned;
  for (std::uint32_t s = 0; s < slab_.size(); ++s) {
    Entry& e = slab_[s];
    if (!e.occupied || e.info.kind != CopyKind::kReplica ||
        e.info.access_count >= threshold) {
      continue;
    }
    pruned.push_back(e.id);
    index_erase(e.id.key());
    release_cell(s);
    --size_;
  }
  return pruned;
}

std::vector<FileId> FileStore::inserted_files() const {
  std::vector<FileId> out;
  for (const Entry& e : slab_) {
    if (e.occupied && e.info.kind == CopyKind::kInserted) out.push_back(e.id);
  }
  return out;
}

std::vector<FileId> FileStore::replica_files() const {
  std::vector<FileId> out;
  for (const Entry& e : slab_) {
    if (e.occupied && e.info.kind == CopyKind::kReplica) out.push_back(e.id);
  }
  return out;
}

}  // namespace lesslog::core
