#include "lesslog/core/membership.hpp"

namespace lesslog::core {

std::optional<Pid> authoritative_holder(const SubtreeView& view,
                                        std::uint32_t sub_id,
                                        const util::StatusWord& live) {
  return view.insertion_target(sub_id, live);
}

std::vector<Pid> authoritative_holders(const SubtreeView& view,
                                       const util::StatusWord& live) {
  return view.insertion_targets(live);
}

std::vector<HolderChange> diff_holders(const SubtreeView& view,
                                       const util::StatusWord& before,
                                       const util::StatusWord& after) {
  std::vector<HolderChange> changes;
  for (std::uint32_t t = 0; t < view.subtree_count(); ++t) {
    const std::optional<Pid> old_holder = view.insertion_target(t, before);
    const std::optional<Pid> new_holder = view.insertion_target(t, after);
    if (old_holder != new_holder) {
      changes.push_back(HolderChange{t, old_holder, new_holder});
    }
  }
  return changes;
}

std::int64_t broadcast_cost(const util::StatusWord& live) {
  return live.live_count() > 0
             ? static_cast<std::int64_t>(live.live_count()) - 1
             : 0;
}

}  // namespace lesslog::core
