#include "lesslog/core/fault_tolerant.hpp"

#include <cassert>
#include <deque>
#include <unordered_set>

#include "lesslog/core/children_list.hpp"

namespace lesslog::core {

SubtreeView::SubtreeView(const LookupTree& tree, int b)
    : tree_(&tree), b_(b) {
  assert(b >= 0 && b < tree.width());
}

std::optional<Pid> SubtreeView::find_live_in_subtree(
    std::uint32_t sub_id, std::uint32_t from_sub_vid,
    const util::StatusWord& live) const {
  assert(sub_id < subtree_count());
  assert(from_sub_vid <= util::mask_of(subtree_width()));
  // Same downward scan as FINDLIVENODE, but over subtree VIDs: Property 3
  // holds within each subtree because each is itself a binomial tree. The
  // subtree's VIDs are (sv << b) | sub_id — a stride-2^b lattice through
  // the full VID space — so for b <= 6 the packed word scan of
  // find_live_node applies with an extra repeating stride mask selecting
  // this subtree's bit positions (see stride_mask64).
  if (b_ > 6) {
    // Subtree VIDs sit >= 64 bits apart: a word scan degenerates to one
    // probe per word, no better than the direct loop.
    for (std::uint32_t sv = from_sub_vid + 1; sv-- > 0;) {
      const Pid p = pid_at(sv, sub_id);
      if (live.is_live(p.value())) return p;
    }
    return std::nullopt;
  }
  const std::uint32_t c = tree_->mapper().complement();
  const std::uint32_t ch = c >> 6;
  const std::uint32_t cl = c & 63u;
  const std::uint64_t* words = live.words();
  const std::uint64_t stride = util::stride_mask64(b_, sub_id);
  const std::uint32_t limit_vid = (from_sub_vid << b_) | sub_id;
  std::uint32_t wv = limit_vid >> 6;
  std::uint64_t mask =
      stride & util::low_mask64(static_cast<int>(limit_vid & 63u) + 1);
  for (;;) {
    const std::uint64_t w = util::xor_permute64(words[wv ^ ch], cl) & mask;
    if (w != 0) {
      const std::uint32_t v =
          (wv << 6) | static_cast<std::uint32_t>(util::top_set_bit64(w));
      return Pid{v ^ c};
    }
    if (wv == 0) return std::nullopt;
    --wv;
    mask = stride;
  }
}

std::optional<Pid> SubtreeView::insertion_target(
    std::uint32_t sub_id, const util::StatusWord& live) const {
  return find_live_in_subtree(sub_id, util::mask_of(subtree_width()), live);
}

std::vector<Pid> SubtreeView::insertion_targets(
    const util::StatusWord& live) const {
  std::vector<Pid> out;
  out.reserve(subtree_count());
  for (std::uint32_t t = 0; t < subtree_count(); ++t) {
    if (const std::optional<Pid> p = insertion_target(t, live)) {
      out.push_back(*p);
    }
  }
  return out;
}

std::optional<Pid> SubtreeView::first_alive_subtree_ancestor(
    Pid k, const util::StatusWord& live) const {
  const std::uint32_t sid = subtree_id(k);
  const VirtualTree sub_tree(subtree_width());
  Vid sv{subtree_vid(k)};
  while (!sub_tree.is_root(sv)) {
    sv = sub_tree.parent(sv);
    const Pid p = pid_at(sv.value(), sid);
    if (live.is_live(p.value())) return p;
  }
  return std::nullopt;
}

std::vector<std::uint32_t> SubtreeView::ancestor_table(
    const util::StatusWord& live) const {
  const int sw = subtree_width();
  const std::uint32_t top = util::mask_of(sw);
  std::vector<std::uint32_t> next(util::space_size(tree_->width()),
                                  AncestorTable::kNone);
  for (std::uint32_t sid = 0; sid < subtree_count(); ++sid) {
    // Descending sub-VID order sees every subtree parent before its
    // children (Property 2), so dead parents reuse their own entries.
    for (std::uint32_t sv = top; sv-- > 0;) {
      const std::uint32_t parent_sv = util::set_highest_zero(sv, sw);
      const Pid parent = pid_at(parent_sv, sid);
      const Pid self = pid_at(sv, sid);
      next[self.value()] = live.is_live(parent.value())
                               ? parent.value()
                               : next[parent.value()];
    }
  }
  return next;
}

std::vector<Pid> SubtreeView::children_list(Pid k,
                                            const util::StatusWord& live) const {
  const std::uint32_t sid = subtree_id(k);
  const VirtualTree sub_tree(subtree_width());
  const auto pid_of = [this, sid](Vid sv) { return pid_at(sv.value(), sid); };
  const std::vector<Vid> vids =
      expand_children_list(sub_tree, Vid{subtree_vid(k)}, pid_of, live);
  std::vector<Pid> out;
  out.reserve(vids.size());
  for (Vid sv : vids) out.push_back(pid_at(sv.value(), sid));
  return out;
}

bool SubtreeView::live_vid_above(Pid k, const util::StatusWord& live) const {
  const std::uint32_t sid = subtree_id(k);
  const std::uint32_t top = util::mask_of(subtree_width());
  const std::uint32_t from = subtree_vid(k);
  if (from >= top) return false;
  if (b_ > 6) {
    for (std::uint32_t sv = from + 1; sv <= top; ++sv) {
      if (live.is_live(pid_at(sv, sid).value())) return true;
    }
    return false;
  }
  // Existence scan over the subtree's stride lattice, upward from the VID
  // just above P(k)'s; see find_live_in_subtree for the layout argument.
  const std::uint32_t c = tree_->mapper().complement();
  const std::uint32_t ch = c >> 6;
  const std::uint32_t cl = c & 63u;
  const std::uint64_t* words = live.words();
  const std::uint64_t stride = util::stride_mask64(b_, sid);
  const std::uint32_t start_vid = (from << b_) | sid;
  const std::uint32_t top_vid = (top << b_) | sid;
  const std::uint32_t top_w = top_vid >> 6;
  std::uint32_t wv = start_vid >> 6;
  std::uint64_t mask =
      stride & ~util::low_mask64(static_cast<int>(start_vid & 63u) + 1);
  for (;;) {
    if ((util::xor_permute64(words[wv ^ ch], cl) & mask) != 0) return true;
    if (wv == top_w) return false;
    ++wv;
    mask = stride;
  }
}

std::optional<Pid> SubtreeView::replicate_target(
    Pid k, const util::StatusWord& live,
    const std::function<bool(Pid)>& holds_copy, util::Rng& rng) const {
  assert(live.is_live(k.value()));
  const std::uint32_t sid = subtree_id(k);
  const Pid sub_root = subtree_root(sid);

  const auto try_list = [&](Pid list_owner) -> std::optional<Pid> {
    for (Pid child : children_list(list_owner, live)) {
      if (child != k && !holds_copy(child)) return child;
    }
    return std::nullopt;
  };

  if (k == sub_root || live_vid_above(k, live)) {
    return try_list(k);
  }
  // P(k) is the stand-in for a dead subtree root: proportional choice
  // between its own list and the subtree root's list, weighted by P(k)'s
  // live subtree offspring against the rest of the subtree's live nodes.
  std::uint32_t own = 0;
  std::uint32_t rest = 0;
  const VirtualTree sub_tree(subtree_width());
  const Vid kv{subtree_vid(k)};
  for (std::uint32_t sv = 0; sv <= util::mask_of(subtree_width()); ++sv) {
    const Pid p = pid_at(sv, sid);
    if (p == k || !live.is_live(p.value())) continue;
    if (sub_tree.in_subtree(Vid{sv}, kv)) {
      ++own;
    } else {
      ++rest;
    }
  }
  const double denom = static_cast<double>(own + rest);
  const bool pick_own =
      denom == 0.0 || rng.uniform01() < static_cast<double>(own) / denom;
  if (pick_own) {
    if (auto p = try_list(k)) return p;
    return try_list(sub_root);
  }
  if (auto p = try_list(sub_root)) return p;
  return try_list(k);
}

SubtreeView::SubtreeUpdate SubtreeView::propagate_update(
    std::uint32_t sub_id, const util::StatusWord& live,
    const std::function<bool(Pid)>& holds_copy) const {
  SubtreeUpdate result;
  const Pid sub_root = subtree_root(sub_id);
  Pid origin = sub_root;
  if (!live.is_live(sub_root.value())) {
    const std::optional<Pid> holder = insertion_target(sub_id, live);
    if (!holder.has_value()) return result;  // empty subtree
    origin = *holder;
  }

  std::unordered_set<Pid> seen;
  std::deque<Pid> queue;
  const auto visit = [&](Pid p) {
    if (seen.insert(p).second && holds_copy(p)) {
      result.updated.push_back(p);
      queue.push_back(p);
    }
  };
  visit(origin);
  if (!live.is_live(sub_root.value())) {
    for (Pid child : children_list(sub_root, live)) {
      ++result.messages;
      visit(child);
    }
  }
  while (!queue.empty()) {
    const Pid current = queue.front();
    queue.pop_front();
    for (Pid child : children_list(current, live)) {
      ++result.messages;
      visit(child);
    }
  }
  return result;
}

RouteResult SubtreeView::route_get(Pid k, const util::StatusWord& live,
                                   const HasCopyFn& has_copy) const {
  assert(live.is_live(k.value()));
  RouteResult result;
  result.path.push_back(k);

  std::uint32_t sid = subtree_id(k);
  const std::uint32_t sv = subtree_vid(k);

  for (std::uint32_t attempt = 0; attempt < subtree_count(); ++attempt) {
    // Entry point of this attempt: the requester's counterpart in the
    // current subtree (same subtree VID, migrated subtree identifier).
    Pid current = pid_at(sv, sid);
    if (attempt > 0) {
      // Migration may land on a dead counterpart; descend to the nearest
      // live proxy via the modified FINDLIVENODE, as all operations inside
      // a subtree do.
      if (!live.is_live(current.value())) {
        const std::optional<Pid> proxy = find_live_in_subtree(sid, sv, live);
        if (!proxy.has_value()) {
          sid = (sid + 1u) % subtree_count();
          continue;  // whole subtree dead; migrate again
        }
        current = *proxy;
      }
      result.path.push_back(current);
      result.used_fallback = true;
    }
    if (has_copy(current)) {
      result.served_by = current;
      return result;
    }
    // Ancestor walk within the subtree.
    Pid walker = current;
    while (true) {
      const std::optional<Pid> up = first_alive_subtree_ancestor(walker, live);
      if (!up.has_value()) break;
      walker = *up;
      result.path.push_back(walker);
      if (has_copy(walker)) {
        result.served_by = walker;
        return result;
      }
    }
    // Stand-in fallback inside this subtree (dead subtree root case).
    if (!live.is_live(subtree_root(sid).value())) {
      const std::optional<Pid> holder = insertion_target(sid, live);
      if (holder.has_value() && *holder != walker) {
        result.path.push_back(*holder);
        if (has_copy(*holder)) {
          result.served_by = *holder;
          return result;
        }
      }
    }
    // Fault in this subtree: migrate to the next subtree identifier.
    sid = (sid + 1u) % subtree_count();
  }
  return result;  // faulted in every subtree
}

}  // namespace lesslog::core
