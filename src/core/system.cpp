#include "lesslog/core/system.hpp"

#include <algorithm>
#include <cassert>

#include "lesslog/core/find_live_node.hpp"
#include "lesslog/core/membership.hpp"
#include "lesslog/core/payload.hpp"
#include "lesslog/core/update.hpp"
#include "lesslog/util/hashing.hpp"

namespace lesslog::core {

System::System(Config cfg)
    : cfg_(cfg), rng_(cfg.seed), live_(cfg.m) {
  assert(util::valid_width(cfg_.m));
  assert(cfg_.b >= 0 && cfg_.b < cfg_.m);
  nodes_.reserve(util::space_size(cfg_.m));
  for (std::uint32_t p = 0; p < util::space_size(cfg_.m); ++p) {
    nodes_.emplace_back(Pid{p});
  }
}

LookupTree System::tree_of(FileId f) const {
  return LookupTree(cfg_.m, target_of(f));
}

Pid System::target_of(FileId f) const { return meta(f).target; }

std::vector<Pid> System::holders(FileId f) const {
  const FileMeta& fm = meta(f);
  std::vector<Pid> out(fm.holders.begin(), fm.holders.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::size_t System::replica_count(FileId f) const {
  const FileMeta& fm = meta(f);
  std::size_t count = 0;
  for (Pid p : fm.holders) {
    const auto info = nodes_[p.value()].store().info(f);
    if (info.has_value() && info->kind == CopyKind::kReplica) ++count;
  }
  return count;
}

std::uint64_t System::version_of(FileId f) const { return meta(f).version; }

std::vector<FileId> System::files() const {
  std::vector<FileId> out;
  out.reserve(files_.size());
  for (const auto& [id, fm] : files_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<FileId> System::lost_files() const {
  std::vector<FileId> out;
  for (const auto& [id, fm] : files_) {
    if (fm.lost) out.push_back(id);
  }
  return out;
}

System::FileMeta& System::meta(FileId f) {
  const auto it = files_.find(f);
  assert(it != files_.end() && "unknown file id");
  return it->second;
}

const System::FileMeta& System::meta(FileId f) const {
  const auto it = files_.find(f);
  assert(it != files_.end() && "unknown file id");
  return it->second;
}

// ---- Membership ------------------------------------------------------------

void System::bootstrap(std::uint32_t count) {
  assert(files_.empty() && "bootstrap must precede file insertion");
  assert(count <= live_.capacity());
  for (std::uint32_t p = 0; p < count; ++p) live_.set_live(p);
}

Pid System::join(std::optional<Pid> requested) {
  Pid p = requested.value_or(Pid{live_.first_dead()});
  assert(p.value() < live_.capacity());
  assert(!live_.is_live(p.value()) && "PID already in use");
  const util::StatusWord before = live_;
  live_.set_live(p.value());
  // "P(k) broadcasts to every live node a message of registering P(k) as a
  // live node" — one message per pre-existing live node.
  maintenance_messages_ += static_cast<std::int64_t>(before.live_count());
  rehome_files(before, std::nullopt, /*crashed=*/false);
  repair_replica_connectivity();
  return p;
}

void System::leave(Pid p) {
  assert(live_.is_live(p.value()));
  const util::StatusWord before = live_;
  live_.set_dead(p.value());
  maintenance_messages_ += broadcast_cost(live_);
  // Replicated files are discarded outright; inserted files are re-homed by
  // rehome_files below (their data is still readable from the departing
  // node while it drains).
  FileStore& store = nodes_[p.value()].store();
  for (FileId f : store.replica_files()) {
    files_.at(f).holders.erase(p);
  }
  const std::vector<FileId> inserted = store.inserted_files();
  rehome_files(before, p, /*crashed=*/false);
  // Anything still on the departing node (its inserted copies were moved by
  // rehome_files, but clear defensively) disappears with it.
  for (FileId f : inserted) {
    if (nodes_[p.value()].store().has(f)) {
      files_.at(f).holders.erase(p);
    }
  }
  store = FileStore{};
  repair_replica_connectivity();
}

void System::fail(Pid p) {
  assert(live_.is_live(p.value()));
  const util::StatusWord before = live_;
  live_.set_dead(p.value());
  // "When P(i) learns the failure of P(k), it first broadcasts to every
  // live node a message of registering P(k) as a dead node."
  maintenance_messages_ += broadcast_cost(live_);
  // A crash loses every copy at p immediately.
  FileStore& store = nodes_[p.value()].store();
  for (FileId f : store.inserted_files()) files_.at(f).holders.erase(p);
  for (FileId f : store.replica_files()) files_.at(f).holders.erase(p);
  store = FileStore{};
  rehome_files(before, p, /*crashed=*/true);
  repair_replica_connectivity();
}

void System::rehome_files(const util::StatusWord& before,
                          std::optional<Pid> departed, bool crashed) {
  for (auto& [f, fm] : files_) {
    if (fm.lost) continue;
    const LookupTree tree(cfg_.m, fm.target);
    const SubtreeView view = view_of(tree);
    for (const HolderChange& change : diff_holders(view, before, live_)) {
      if (!change.to.has_value()) continue;  // subtree emptied; nothing to do
      const Pid dest = *change.to;
      const auto dest_info = nodes_[dest.value()].store().info(f);
      if (dest_info.has_value() && dest_info->kind == CopyKind::kInserted) {
        continue;  // already authoritative here
      }
      // Locate a data source. After a graceful leave the departing node can
      // still push its copy; after a crash the data must be pulled from any
      // surviving holder (typically the sibling subtree's target, Section
      // 5.3). With b = 0 and no replicas, the file is lost.
      bool have_source = false;
      if (!crashed && change.from.has_value()) {
        have_source = true;  // previous holder still has the bits
      } else if (!fm.holders.empty()) {
        have_source = true;  // pull from a surviving copy
      }
      if (!have_source) {
        fm.lost = true;
        break;
      }
      place_inserted(f, fm, dest);
      maintenance_messages_ += 1;  // the file-transfer message
      // Remove the stale authoritative copy from the previous holder (the
      // departing node is cleared wholesale by leave()/fail()).
      if (change.from.has_value() && *change.from != dest &&
          (!departed.has_value() || *change.from != *departed)) {
        drop_copy(f, fm, *change.from);
      }
    }
  }
}

void System::repair_replica_connectivity() {
  for (auto& [f, fm] : files_) {
    if (fm.holders.empty()) continue;
    const LookupTree tree(cfg_.m, fm.target);
    const auto holds = [&fm](Pid p) { return fm.holders.contains(p); };

    std::unordered_set<Pid> reachable;
    if (cfg_.b == 0) {
      for (const Pid p : propagate_update(tree, live_, holds).updated) {
        reachable.insert(p);
      }
    } else {
      const SubtreeView view = view_of(tree);
      for (std::uint32_t t = 0; t < view.subtree_count(); ++t) {
        for (const Pid p : view.propagate_update(t, live_, holds).updated) {
          reachable.insert(p);
        }
      }
    }
    std::vector<Pid> to_drop;
    for (const Pid h : fm.holders) {
      if (reachable.contains(h)) continue;
      const auto info = nodes_[h.value()].store().info(f);
      if (info.has_value() && info->kind == CopyKind::kReplica) {
        to_drop.push_back(h);
      }
    }
    for (const Pid h : to_drop) {
      drop_copy(f, fm, h);
      maintenance_messages_ += 1;  // the discard notification
    }
  }
}

// ---- File operations --------------------------------------------------------

FileId System::insert(std::string_view name) {
  const FileId f{util::fnv1a64(name)};
  return insert_with_target(f, Pid{util::psi(name, cfg_.m)});
}

FileId System::insert_key(std::uint64_t key) {
  // The naming rule the whole stack shares: the FileId *is* the key and
  // the target is ψ(key). The proto layer re-derives targets from file
  // ids alone (Peer::target_of), so the two must stay in lockstep.
  const FileId f{key};
  return insert_with_target(f, Pid{util::psi_u64(key, cfg_.m)});
}

FileId System::insert_at(Pid r) {
  assert(r.value() < live_.capacity());
  // Synthetic ids live in a reserved stripe so they cannot collide with
  // hash-derived ids in practice (the top byte is forced).
  const FileId f{(std::uint64_t{0xF1} << 56) | next_file_key_++};
  return insert_with_target(f, r);
}

FileId System::insert_with_target(FileId f, Pid r) {
  assert(!files_.contains(f) && "duplicate insert");
  FileMeta fm{.target = r, .version = 0, .holders = {}, .lost = false};
  const LookupTree tree(cfg_.m, r);
  const SubtreeView view = view_of(tree);
  for (Pid holder : view.insertion_targets(live_)) {
    auto [it, inserted] = files_.try_emplace(f, fm);
    place_inserted(f, it->second, holder);
    maintenance_messages_ += 1;  // the forwarded insert request
  }
  if (!files_.contains(f)) {
    // No live node anywhere: record the file as lost on arrival.
    fm.lost = true;
    files_.emplace(f, std::move(fm));
  }
  return f;
}

void System::place_inserted(FileId f, FileMeta& fm, Pid at) {
  nodes_[at.value()].store().put_inserted(
      f, fm.version,
      cfg_.payload_size > 0 ? make_payload(f, fm.version, cfg_.payload_size)
                            : Payload{});
  fm.holders.insert(at);
}

void System::drop_copy(FileId f, FileMeta& fm, Pid at) {
  nodes_[at.value()].store().erase(f);
  fm.holders.erase(at);
}

System::GetOutcome System::get(FileId f, Pid at) {
  assert(live_.is_live(at.value()) && "requests originate at live nodes");
  FileMeta& fm = meta(f);
  const LookupTree tree(cfg_.m, fm.target);
  const HasCopyFn has_copy = [&fm](Pid p) { return fm.holders.contains(p); };

  RouteResult route;
  if (cfg_.b == 0) {
    route = route_get(tree, at, live_, has_copy);
  } else {
    route = view_of(tree).route_get(at, live_, has_copy);
  }
  lookup_messages_ += route.hops();
  for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
    nodes_[route.path[i].value()].count_forwarded();
  }
  if (route.served_by.has_value()) {
    Node& server = nodes_[route.served_by->value()];
    server.count_served();
    server.store().record_access(f);
  } else {
    ++faults_;
  }
  return GetOutcome{route};
}

System::UpdateOutcome System::update(FileId f) {
  FileMeta& fm = meta(f);
  UpdateOutcome out;
  out.new_version = ++fm.version;
  const LookupTree tree(cfg_.m, fm.target);
  const auto holds = [&fm](Pid p) { return fm.holders.contains(p); };

  const auto apply_all = [&](const std::vector<Pid>& updated) {
    for (Pid p : updated) {
      nodes_[p.value()].store().apply_update(
          f, fm.version,
          cfg_.payload_size > 0
              ? make_payload(f, fm.version, cfg_.payload_size)
              : Payload{});
      ++out.copies_updated;
    }
  };
  if (cfg_.b == 0) {
    const UpdateResult res = propagate_update(tree, live_, holds);
    apply_all(res.updated);
    out.messages = res.messages;
  } else {
    const SubtreeView view = view_of(tree);
    for (std::uint32_t t = 0; t < view.subtree_count(); ++t) {
      const SubtreeView::SubtreeUpdate res =
          view.propagate_update(t, live_, holds);
      apply_all(res.updated);
      out.messages += res.messages;
    }
  }
  return out;
}

std::optional<Pid> System::replicate(FileId f, Pid overloaded) {
  FileMeta& fm = meta(f);
  const LookupTree tree(cfg_.m, fm.target);
  const auto holds = [&fm](Pid p) { return fm.holders.contains(p); };

  std::optional<Pid> target;
  if (cfg_.b == 0) {
    const std::optional<Placement> placement =
        replicate_target(tree, overloaded, live_, holds, rng_);
    if (placement.has_value()) target = placement->target;
  } else {
    target = view_of(tree).replicate_target(overloaded, live_, holds, rng_);
  }
  if (!target.has_value()) return std::nullopt;
  // The replica receives the overloaded holder's current bytes; with
  // deterministic content that is the canonical payload of the version.
  nodes_[target->value()].store().put_replica(
      f, fm.version,
      cfg_.payload_size > 0 ? make_payload(f, fm.version, cfg_.payload_size)
                            : Payload{});
  fm.holders.insert(*target);
  maintenance_messages_ += 1;  // the CREATEFILE message
  return target;
}

std::size_t System::prune_cold_replicas(FileId f, std::uint64_t threshold) {
  FileMeta& fm = meta(f);
  std::size_t dropped = 0;
  std::vector<Pid> holder_list(fm.holders.begin(), fm.holders.end());
  for (Pid p : holder_list) {
    FileStore& store = nodes_[p.value()].store();
    const auto info = store.info(f);
    if (info.has_value() && info->kind == CopyKind::kReplica &&
        info->access_count < threshold) {
      store.erase(f);
      fm.holders.erase(p);
      ++dropped;
    }
  }
  return dropped;
}

void System::reset_counters() {
  for (Node& n : nodes_) n.reset_counters();
}

System::IntegrityReport System::verify_integrity() const {
  IntegrityReport report;
  for (const auto& [f, fm] : files_) {
    for (const Pid p : fm.holders) {
      const FileStore& store = nodes_[p.value()].store();
      const auto info = store.info(f);
      if (!info.has_value()) continue;  // holder bookkeeping tested elsewhere
      if (info->version != fm.version) report.stale.emplace_back(f, p);
      if (cfg_.payload_size > 0 &&
          !verify_payload(f, info->version, info->data)) {
        report.corrupt.emplace_back(f, p);
      }
    }
  }
  return report;
}

bool System::corrupt_copy(FileId f, Pid p) {
  FileStore& store = nodes_[p.value()].store();
  const auto* data = store.payload(f);
  if (data == nullptr || data->empty()) return false;
  Payload flipped = *data;
  flipped[flipped.size() / 2] ^= 0x40u;
  return store.set_payload(f, std::move(flipped));
}

}  // namespace lesslog::core
