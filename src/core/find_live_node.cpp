#include "lesslog/core/find_live_node.hpp"

namespace lesslog::core {

std::optional<Pid> find_live_node(const LookupTree& tree, Pid s,
                                  const util::StatusWord& live) {
  if (live.is_live(s.value())) return s;
  const std::uint32_t start = tree.vid_of(s).value();
  // Downward VID scan, exactly the paper's pseudocode loop:
  //   for i <- s.vid - 1 downto 0: p <- r̄ ⊕ i; if P(p) alive return P(p)
  for (std::uint32_t i = start; i-- > 0;) {
    const Pid p = tree.pid_of(Vid{i});
    if (live.is_live(p.value())) return p;
  }
  return std::nullopt;
}

std::optional<Pid> insertion_target(const LookupTree& tree,
                                    const util::StatusWord& live) {
  return find_live_node(tree, tree.root(), live);
}

bool live_vid_above(const LookupTree& tree, Pid k,
                    const util::StatusWord& live) {
  const std::uint32_t start = tree.vid_of(k).value();
  const std::uint32_t top = util::mask_of(tree.width());
  for (std::uint32_t i = start + 1; i <= top; ++i) {
    if (live.is_live(tree.pid_of(Vid{i}).value())) return true;
  }
  return false;
}

}  // namespace lesslog::core
