#include "lesslog/core/find_live_node.hpp"

namespace lesslog::core {

// FINDLIVENODE as a packed bit-scan.
//
// The paper's loop — for i <- vid(s)-1 downto 0: p <- r̄ ⊕ i; if P(p) alive
// return P(p) — probes one liveness bit per VID. The StatusWord already
// stores those bits packed 64 per word in *PID* order, and the PID↔VID map
// is a XOR with the root complement c (Property 4), which factors across
// the 64-bit word boundary:
//
//   pid = vid ^ c   ⇒   word(pid) = word(vid) ^ (c >> 6)
//                       bit(pid)  = bit(vid)  ^ (c & 63)
//
// So the VID-descending scan visits whole 64-VID blocks at a time: fetch
// the PID word at the XOR-permuted index, realign its bits into VID order
// with xor_permute64 (≤ 6 masked shifts), mask off VIDs at or above the
// start, and take the highest surviving set bit. One word lookup replaces
// up to 64 probes; a mostly-live system resolves in the first word.

std::optional<Pid> find_live_node(const LookupTree& tree, Pid s,
                                  const util::StatusWord& live) {
  if (live.is_live(s.value())) return s;
  const std::uint32_t limit = tree.vid_of(s).value();  // exclusive bound
  if (limit == 0) return std::nullopt;
  const std::uint32_t c = tree.mapper().complement();
  const std::uint32_t ch = c >> 6;
  const std::uint32_t cl = c & 63u;
  const std::uint64_t* words = live.words();
  std::uint32_t wv = (limit - 1u) >> 6;
  std::uint64_t mask = util::low_mask64(static_cast<int>((limit - 1u) & 63u) + 1);
  for (;;) {
    const std::uint64_t w = util::xor_permute64(words[wv ^ ch], cl) & mask;
    if (w != 0) {
      const std::uint32_t v =
          (wv << 6) | static_cast<std::uint32_t>(util::top_set_bit64(w));
      return Pid{v ^ c};
    }
    if (wv == 0) return std::nullopt;
    --wv;
    mask = ~std::uint64_t{0};
  }
}

std::optional<Pid> insertion_target(const LookupTree& tree,
                                    const util::StatusWord& live) {
  return find_live_node(tree, tree.root(), live);
}

bool live_vid_above(const LookupTree& tree, Pid k,
                    const util::StatusWord& live) {
  const std::uint32_t start = tree.vid_of(k).value();
  const std::uint32_t top = util::mask_of(tree.width());
  if (start >= top) return false;
  const std::uint32_t c = tree.mapper().complement();
  const std::uint32_t ch = c >> 6;
  const std::uint32_t cl = c & 63u;
  const std::uint64_t* words = live.words();
  const std::uint32_t top_w = top >> 6;
  std::uint32_t wv = start >> 6;
  // Partial first word: only VIDs strictly above `start`. (For m < 6 the
  // mask reaches past capacity, but those stored bits are always zero.)
  const std::uint64_t first =
      util::xor_permute64(words[wv ^ ch], cl) &
      ~util::low_mask64(static_cast<int>(start & 63u) + 1);
  if (first != 0) return true;
  // Full words need no realignment — a XOR permutation cannot create or
  // destroy set bits, so "any live VID in this block" is just w != 0.
  while (wv != top_w) {
    ++wv;
    if (words[wv ^ ch] != 0) return true;
  }
  return false;
}

}  // namespace lesslog::core
