#include "lesslog/chaos/replay.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "lesslog/util/minijson.hpp"

namespace lesslog::chaos {

namespace {

/// Doubles at round-trip precision (%.17g survives text -> double -> text).
std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += '"';
  return out;
}

const char* b(bool v) { return v ? "true" : "false"; }

void emit_rule(std::ostringstream& os, const RuleRecord& rec) {
  const proto::FaultRule& r = rec.rule;
  os << "{\"epoch\":" << rec.epoch << ",\"kind\":\""
     << proto::fault_kind_name(r.kind) << "\",\"start\":" << num(r.start)
     << ",\"stop\":" << num(r.stop)
     << ",\"probability\":" << num(r.probability)
     << ",\"p_good_to_bad\":" << num(r.p_good_to_bad)
     << ",\"p_bad_to_good\":" << num(r.p_bad_to_good)
     << ",\"loss_good\":" << num(r.loss_good)
     << ",\"loss_bad\":" << num(r.loss_bad)
     << ",\"extra_delay\":" << num(r.extra_delay) << ",\"group\":[";
  for (std::size_t i = 0; i < r.group.size(); ++i) {
    if (i != 0) os << ',';
    os << r.group[i];
  }
  os << "]}";
}

}  // namespace

std::string artifact_to_json(const Report& report) {
  const ChaosConfig& c = report.config;
  std::ostringstream os;
  os << "{\"schema\":\"lesslog.chaos\",\"version\":1,";
  // seed as a string: JSON numbers are doubles and lose 64-bit integers.
  os << "\"config\":{\"m\":" << c.m << ",\"b\":" << c.b
     << ",\"nodes\":" << c.nodes << ",\"seed\":\"" << c.seed << "\""
     << ",\"epochs\":" << c.epochs
     << ",\"epoch_length\":" << num(c.epoch_length)
     << ",\"fault_intensity\":" << num(c.fault_intensity)
     << ",\"files\":" << c.files << ",\"get_rate\":" << num(c.get_rate)
     << ",\"shards\":" << c.shards << ",\"bursts\":" << b(c.bursts)
     << ",\"partitions\":" << b(c.partitions)
     << ",\"corruption\":" << b(c.corruption)
     << ",\"duplicates\":" << b(c.duplicates)
     << ",\"delay_spikes\":" << b(c.delay_spikes)
     << ",\"crashes\":" << b(c.crashes) << ",\"churn\":" << b(c.churn)
     << ",\"silent_crashes\":" << b(c.silent_crashes)
     << ",\"swim\":" << b(c.swim)
     << ",\"swim_period\":" << num(c.swim_period)
     << ",\"swim_direct_timeout\":" << num(c.swim_direct_timeout)
     << ",\"swim_proxies\":" << c.swim_proxies
     << ",\"swim_suspect_periods\":" << c.swim_suspect_periods
     << ",\"swim_gossip_repeats\":" << c.swim_gossip_repeats
     << ",\"swim_convergence_rounds\":" << c.swim_convergence_rounds
     << ",\"net_jitter\":" << num(c.net_jitter)
     << ",\"adaptive_timeouts\":" << b(c.adaptive_timeouts)
     << ",\"hedge_percentile\":" << num(c.hedge_percentile)
     << ",\"suspicion_routing\":" << b(c.suspicion_routing)
     << ",\"busy_budget\":" << c.busy_budget
     << ",\"busy_refill\":" << num(c.busy_refill) << "},";
  os << "\"violations\":[";
  for (std::size_t i = 0; i < report.violations.size(); ++i) {
    const Violation& v = report.violations[i];
    if (i != 0) os << ',';
    os << "{\"epoch\":" << v.epoch << ",\"check\":" << quoted(v.check)
       << ",\"detail\":" << quoted(v.detail) << '}';
  }
  os << "],";
  os << "\"schedule\":{\"rules\":[";
  for (std::size_t i = 0; i < report.record.rules.size(); ++i) {
    if (i != 0) os << ',';
    emit_rule(os, report.record.rules[i]);
  }
  os << "],\"ops\":[";
  for (std::size_t i = 0; i < report.record.ops.size(); ++i) {
    const OpRecord& op = report.record.ops[i];
    if (i != 0) os << ',';
    os << "{\"time\":" << num(op.time) << ",\"kind\":\""
       << op_kind_name(op.kind) << "\",\"pid\":" << op.pid << '}';
  }
  os << "]},";
  os << "\"stats\":{\"burst_dropped\":" << report.injected.burst_dropped
     << ",\"partition_dropped\":" << report.injected.partition_dropped
     << ",\"duplicated\":" << report.injected.duplicated
     << ",\"corrupted\":" << report.injected.corrupted
     << ",\"delay_spikes\":" << report.injected.delay_spikes
     << ",\"messages_sent\":" << report.messages_sent
     << ",\"repair_pushes\":" << report.repair_pushes
     << ",\"workload_issued\":" << report.workload_issued
     << ",\"workload_completed\":" << report.workload_completed
     << ",\"workload_faults\":" << report.workload_faults
     << ",\"rtt_samples\":" << report.reliability.rtt_samples
     << ",\"hedges_launched\":" << report.reliability.hedges_launched
     << ",\"hedge_won\":" << report.reliability.hedge_won
     << ",\"hedge_cancelled\":" << report.reliability.hedge_cancelled
     << ",\"busy_received\":" << report.reliability.busy_received
     << ",\"busy_shed\":" << report.reliability.busy_shed
     << ",\"sim_time\":" << num(report.sim_time);
  if (c.swim) {
    os << ",\"swim\":{\"pings\":" << report.swim.pings
       << ",\"ping_reqs\":" << report.swim.ping_reqs
       << ",\"acks\":" << report.swim.acks
       << ",\"suspects\":" << report.swim.suspects
       << ",\"confirms\":" << report.swim.confirms
       << ",\"false_suspects\":" << report.swim.false_suspects
       << ",\"false_confirms\":" << report.swim.false_confirms
       << ",\"refutations\":" << report.swim.refutations
       << ",\"incarnation_bumps\":" << report.swim.incarnation_bumps
       << ",\"gossip_bytes\":" << report.swim.gossip_bytes
       << ",\"detection_latency\":[";
    for (std::size_t i = 0; i < report.detection_latency.size(); ++i) {
      if (i != 0) os << ',';
      os << num(report.detection_latency[i]);
    }
    os << "]}";
  }
  os << "}}";
  return os.str();
}

bool write_artifact(const std::string& path, const Report& report) {
  std::ofstream out(path);
  if (!out) return false;
  out << artifact_to_json(report) << '\n';
  return static_cast<bool>(out);
}

namespace {

const util::minijson::Value& require(const util::minijson::Value& obj,
                                     const char* key) {
  const util::minijson::Value* v = obj.find(key);
  if (v == nullptr) {
    throw std::invalid_argument(
        std::string("chaos artifact: missing key '") + key + "'");
  }
  return *v;
}

}  // namespace

ChaosConfig config_from_artifact(const std::string& json) {
  std::string parse_error;
  const std::optional<util::minijson::Value> doc =
      util::minijson::parse(json, &parse_error);
  if (!doc.has_value()) {
    throw std::invalid_argument("chaos artifact: " + parse_error);
  }
  if (!doc->is_object()) {
    throw std::invalid_argument("chaos artifact: not a JSON object");
  }
  const util::minijson::Value& schema = require(*doc, "schema");
  if (!schema.is_string() || schema.string != "lesslog.chaos") {
    throw std::invalid_argument("chaos artifact: wrong schema tag");
  }
  const util::minijson::Value& cfg = require(*doc, "config");
  if (!cfg.is_object()) {
    throw std::invalid_argument("chaos artifact: config must be an object");
  }
  ChaosConfig out;
  out.m = static_cast<int>(require(cfg, "m").number);
  out.b = static_cast<int>(require(cfg, "b").number);
  out.nodes = static_cast<std::uint32_t>(require(cfg, "nodes").number);
  out.seed = std::stoull(require(cfg, "seed").string);
  out.epochs = static_cast<int>(require(cfg, "epochs").number);
  out.epoch_length = require(cfg, "epoch_length").number;
  out.fault_intensity = require(cfg, "fault_intensity").number;
  out.files = static_cast<int>(require(cfg, "files").number);
  out.get_rate = require(cfg, "get_rate").number;
  // Absent in pre-sharding artifacts; those replay on the serial swarm.
  if (const util::minijson::Value* shards = cfg.find("shards")) {
    out.shards = static_cast<std::size_t>(shards->number);
  }
  out.bursts = require(cfg, "bursts").boolean;
  out.partitions = require(cfg, "partitions").boolean;
  out.corruption = require(cfg, "corruption").boolean;
  out.duplicates = require(cfg, "duplicates").boolean;
  out.delay_spikes = require(cfg, "delay_spikes").boolean;
  out.crashes = require(cfg, "crashes").boolean;
  out.churn = require(cfg, "churn").boolean;
  out.silent_crashes = require(cfg, "silent_crashes").boolean;
  // SWIM keys are absent in pre-membership artifacts; those replay in
  // oracle mode with the default tunables.
  if (const util::minijson::Value* v = cfg.find("swim")) {
    out.swim = v->boolean;
  }
  if (const util::minijson::Value* v = cfg.find("swim_period")) {
    out.swim_period = v->number;
  }
  if (const util::minijson::Value* v = cfg.find("swim_direct_timeout")) {
    out.swim_direct_timeout = v->number;
  }
  if (const util::minijson::Value* v = cfg.find("swim_proxies")) {
    out.swim_proxies = static_cast<int>(v->number);
  }
  if (const util::minijson::Value* v = cfg.find("swim_suspect_periods")) {
    out.swim_suspect_periods = static_cast<int>(v->number);
  }
  if (const util::minijson::Value* v = cfg.find("swim_gossip_repeats")) {
    out.swim_gossip_repeats = static_cast<int>(v->number);
  }
  if (const util::minijson::Value* v = cfg.find("swim_convergence_rounds")) {
    out.swim_convergence_rounds = static_cast<int>(v->number);
  }
  if (const util::minijson::Value* v = cfg.find("net_jitter")) {
    out.net_jitter = v->number;
  }
  // Reliability-layer keys are absent in pre-adaptive artifacts; those
  // replay with the layer off (its byte-identical default).
  if (const util::minijson::Value* v = cfg.find("adaptive_timeouts")) {
    out.adaptive_timeouts = v->boolean;
  }
  if (const util::minijson::Value* v = cfg.find("hedge_percentile")) {
    out.hedge_percentile = v->number;
  }
  if (const util::minijson::Value* v = cfg.find("suspicion_routing")) {
    out.suspicion_routing = v->boolean;
  }
  if (const util::minijson::Value* v = cfg.find("busy_budget")) {
    out.busy_budget = static_cast<int>(v->number);
  }
  if (const util::minijson::Value* v = cfg.find("busy_refill")) {
    out.busy_refill = v->number;
  }
  out.validate();
  return out;
}

Report replay(const std::string& json) {
  Driver driver(config_from_artifact(json));
  return driver.run();
}

bool same_outcome(const Report& a, const Report& b) {
  return a.violations == b.violations && a.record == b.record &&
         a.injected == b.injected &&
         a.workload_issued == b.workload_issued &&
         a.workload_completed == b.workload_completed &&
         a.workload_faults == b.workload_faults &&
         a.messages_sent == b.messages_sent &&
         // The reliability ledger (hedge and shed accounting included)
         // must replay exactly; with the layer off every cell but
         // issued/ok/faults is zero on both sides.
         a.reliability == b.reliability &&
         // Oracle runs leave both at their zero defaults; SWIM runs must
         // reproduce the detector's whole ledger, not just the workload's.
         a.swim == b.swim && a.detection_latency == b.detection_latency;
}

}  // namespace lesslog::chaos
