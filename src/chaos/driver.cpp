#include "lesslog/chaos/driver.hpp"

#include <algorithm>
#include <cassert>

#include "lesslog/util/bits.hpp"

namespace lesslog::chaos {

Driver::Driver(ChaosConfig cfg)
    : cfg_(cfg), rng_(cfg.seed ^ 0xC0A0'51ABULL) {
  cfg_.validate();
  proto::Swarm::Config sc;
  sc.m = cfg_.m;
  sc.b = cfg_.b;
  sc.nodes = cfg_.nodes;
  sc.seed = cfg_.seed;
  // Ambient loss stays off: loss is expressed through windowed burst
  // rules, so the repair phase after each heal runs on a clean wire.
  sc.net.drop_probability = 0.0;
  swarm_ = std::make_unique<proto::Swarm>(sc);
}

Driver::~Driver() = default;

std::uint32_t Driver::random_live_pid() {
  const std::vector<std::uint32_t> live = swarm_->status().live_pids();
  assert(!live.empty());
  return live[rng_.bounded(live.size())];
}

void Driver::insert_catalog() {
  for (int i = 0; i < cfg_.files; ++i) {
    // Distinct deterministic keys; ψ spreads them over the ID space.
    const std::uint64_t key =
        (cfg_.seed << 20) + static_cast<std::uint64_t>(i) * 7919u + 1u;
    keys_.push_back(key);
    swarm_->insert_named(key, core::Pid{random_live_pid()});
  }
  swarm_->settle();
}

void Driver::issue_get() {
  if (swarm_->status().live_count() == 0) return;
  const core::Pid at{random_live_pid()};
  const core::FileId f{keys_[rng_.bounded(keys_.size())]};
  ++issued_;
  swarm_->get(f, swarm_->peer(at).target_of(f), at,
              [this](const proto::GetResult& res) {
                ++completed_;
                if (!res.ok) ++faults_;
              });
}

void Driver::schedule_workload(double now) {
  if (cfg_.get_rate <= 0.0) return;
  swarm_->engine().poisson_process(cfg_.get_rate, now + cfg_.epoch_length,
                                   [this] { issue_get(); });
}

void Driver::schedule_epoch_ops(int /*epoch*/, double now) {
  const double L = cfg_.epoch_length;
  sim::Engine& engine = swarm_->engine();
  const int op_count = 1 + static_cast<int>(rng_.bounded(3));
  for (int i = 0; i < op_count; ++i) {
    const double t = now + (0.10 + 0.60 * rng_.uniform01()) * L;
    // Which op runs is drawn now; which PID it hits is resolved at fire
    // time from ground truth (both draws replay identically).
    const std::uint64_t pick = rng_.bounded(4);
    if (pick <= 1 && cfg_.crashes) {
      engine.at(t, [this, t, L] {
        if (swarm_->status().live_count() <= min_live_) return;
        const core::Pid victim{random_live_pid()};
        if (cfg_.silent_crashes) {
          swarm_->crash_silent(victim);
          record_.ops.push_back(
              OpRecord{t, OpKind::kSilentCrash, victim.value()});
          return;  // broken mode: the node never comes back
        }
        swarm_->crash(victim);
        record_.ops.push_back(OpRecord{t, OpKind::kCrash, victim.value()});
        const double back = t + (0.20 + 0.30 * rng_.uniform01()) * L;
        swarm_->engine().at(back, [this, back, victim] {
          if (swarm_->status().is_live(victim.value())) return;
          swarm_->restart(victim);
          record_.ops.push_back(
              OpRecord{back, OpKind::kRestart, victim.value()});
        });
      });
    } else if (pick == 2 && cfg_.churn) {
      engine.at(t, [this, t] {
        if (swarm_->status().live_count() <= min_live_) return;
        const core::Pid leaver{random_live_pid()};
        swarm_->depart(leaver);
        record_.ops.push_back(OpRecord{t, OpKind::kDepart, leaver.value()});
      });
    } else if (pick == 3 && cfg_.churn) {
      engine.at(t, [this, t] {
        if (swarm_->status().dead_count() == 0) return;
        const core::Pid joined = swarm_->join();
        record_.ops.push_back(OpRecord{t, OpKind::kJoin, joined.value()});
      });
    }
  }
}

Report Driver::run() {
  assert(!ran_ && "a Driver runs its schedule once");
  ran_ = true;
  // Keep enough peers alive that every fault-tolerance subtree can stay
  // populated (and the swarm never empties out under a hostile draw).
  min_live_ = std::max<std::uint32_t>(4u, (1u << cfg_.b) + 1u);

  Report report;
  report.config = cfg_;
  insert_catalog();

  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    const double now = swarm_->engine().now();
    const proto::FaultPlan plan =
        make_epoch_plan(cfg_, rng_, epoch, now);
    if (!plan.rules.empty()) {
      // The previous injector (all windows closed, wire drained) is
      // about to be replaced; bank its totals first.
      if (const proto::FaultInjector* old =
              swarm_->network().fault_injector()) {
        const proto::FaultStats& s = old->stats();
        prior_injected_.burst_dropped += s.burst_dropped;
        prior_injected_.partition_dropped += s.partition_dropped;
        prior_injected_.duplicated += s.duplicated;
        prior_injected_.corrupted += s.corrupted;
        prior_injected_.delay_spikes += s.delay_spikes;
      }
      swarm_->network().install_fault_plan(plan);
      for (const proto::FaultRule& r : plan.rules) {
        record_.rules.push_back(RuleRecord{epoch, r});
      }
    }
    schedule_epoch_ops(epoch, now);
    schedule_workload(now);

    swarm_->engine().run_until(now + cfg_.epoch_length);
    swarm_->settle();
    if (!cfg_.silent_crashes) {
      // Anti-entropy repair: converge every live peer's liveness view on
      // the clean post-heal wire. Broken mode skips it — that is the
      // broken part the auditor must catch.
      swarm_->reannounce();
      swarm_->settle();
    }

    proto::FaultStats injected = prior_injected_;
    if (const proto::FaultInjector* inj =
            swarm_->network().fault_injector()) {
      const proto::FaultStats& s = inj->stats();
      injected.burst_dropped += s.burst_dropped;
      injected.partition_dropped += s.partition_dropped;
      injected.duplicated += s.duplicated;
      injected.corrupted += s.corrupted;
      injected.delay_spikes += s.delay_spikes;
    }
    Audit::check(*swarm_, keys_, injected, issued_, completed_, epoch,
                 report.violations);
    report.injected = injected;
  }

  report.record = record_;
  report.workload_issued = issued_;
  report.workload_completed = completed_;
  report.workload_faults = faults_;
  report.messages_sent = swarm_->network().messages_sent();
#if LESSLOG_METRICS_ENABLED
  report.repair_pushes = static_cast<std::int64_t>(
      swarm_->metrics().repair_pushes->value());
#endif
  report.sim_time = swarm_->engine().now();
  return report;
}

}  // namespace lesslog::chaos
