#include "lesslog/chaos/driver.hpp"

#include <algorithm>
#include <cassert>
#include <queue>

#include "lesslog/util/bits.hpp"

namespace lesslog::chaos {

Driver::Driver(ChaosConfig cfg)
    : cfg_(cfg), rng_(cfg.seed ^ 0xC0A0'51ABULL) {
  cfg_.validate();
  // SWIM mode always runs the sharded driver (even at shards == 1): the
  // pre-materialized timeline draws the chaos stream in the same order
  // for every shard count, which is what makes abl_membership's curves
  // shard-count-invariant.
  if (cfg_.shards > 1 || cfg_.swim) {
    proto::ShardedSwarm::Config sc;
    sc.m = cfg_.m;
    sc.b = cfg_.b;
    sc.nodes = cfg_.nodes;
    sc.seed = cfg_.seed;
    sc.shards = cfg_.shards;
    // Ambient loss stays off for the same reason as the serial path;
    // the default base_latency keeps every pairwise lookahead floor
    // positive, so the windowed-parallel schedule always exists.
    sc.net.drop_probability = 0.0;
    sc.net.jitter = cfg_.net_jitter;
    // SWIM runs spread each link's latency by a small deterministic
    // per-pair stagger. abl_membership zeroes net_jitter (jitter draws
    // come from per-shard RNG streams, which would make the trace depend
    // on the layout); without *any* spread every delivery shares one
    // constant latency, so a ping-req fan-out lands at its target as a
    // timestamp tie whose resolution differs between the serial queue
    // and a sharded mailbox drain. The stagger keeps arrival times on
    // distinct links distinct, making delivery order a pure function of
    // time — the last ingredient of shard-count invariance. It only ever
    // *adds* latency, so the pairwise lookahead floor stays valid.
    if (cfg_.swim) sc.net.link_stagger = 0.002;
    sc.client.adaptive = cfg_.adaptive_timeouts;
    sc.client.hedge_percentile = cfg_.hedge_percentile;
    sc.client.suspicion_routing = cfg_.suspicion_routing;
    sc.client.seed = cfg_.seed;  // inert unless the adaptive layer is on
    sc.peer.busy_budget = cfg_.busy_budget;
    sc.peer.busy_refill = cfg_.busy_refill;
    sharded_ = std::make_unique<proto::ShardedSwarm>(sc);
    tally_.resize(cfg_.shards);
    if (cfg_.swim) swim_setup();
    return;
  }
  proto::Swarm::Config sc;
  sc.m = cfg_.m;
  sc.b = cfg_.b;
  sc.nodes = cfg_.nodes;
  sc.seed = cfg_.seed;
  // Ambient loss stays off: loss is expressed through windowed burst
  // rules, so the repair phase after each heal runs on a clean wire.
  sc.net.drop_probability = 0.0;
  sc.net.jitter = cfg_.net_jitter;
  sc.client.adaptive = cfg_.adaptive_timeouts;
  sc.client.hedge_percentile = cfg_.hedge_percentile;
  sc.client.suspicion_routing = cfg_.suspicion_routing;
  sc.client.seed = cfg_.seed;  // inert unless the adaptive layer is on
  sc.peer.busy_budget = cfg_.busy_budget;
  sc.peer.busy_refill = cfg_.busy_refill;
  swarm_ = std::make_unique<proto::Swarm>(sc);
}

Driver::~Driver() = default;

Report Driver::run() {
  assert(!ran_ && "a Driver runs its schedule once");
  ran_ = true;
  // Keep enough peers alive that every fault-tolerance subtree can stay
  // populated (and the swarm never empties out under a hostile draw).
  min_live_ = std::max<std::uint32_t>(4u, (1u << cfg_.b) + 1u);
  return sharded_ != nullptr ? run_sharded() : run_serial();
}

void Driver::swim_setup() {
  membership::SwimConfig mc;
  mc.period = cfg_.swim_period;
  mc.direct_timeout = cfg_.swim_direct_timeout;
  mc.proxies = cfg_.swim_proxies;
  mc.suspect_periods = cfg_.swim_suspect_periods;
  mc.gossip_repeats = cfg_.swim_gossip_repeats;
  mc.seed = cfg_.seed;
  swim_ = std::make_unique<membership::SwimRuntime>(mc, cfg_.m);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    sharded_->network(s).add_sink(*swim_);
  }
  swim_->set_truth_provider([this] { return &sharded_->status(); });
  for (std::uint32_t p = 0; p < util::space_size(cfg_.m); ++p) {
    if (sharded_->status().is_live(p)) swim_attach(core::Pid{p});
  }
}

void Driver::swim_drain_confirms() {
  // Detection latency = crash -> earliest TRUE confirm anywhere. A false
  // confirm (partition casualty) never closes a crash's measurement. The
  // sim-time minimum is what makes the curves shard-count invariant: a
  // "first callback wins" hook would record thread arrival order.
  for (const membership::ConfirmEvent& ev : swim_->drain_confirms()) {
#ifdef LESSLOG_SWIM_DEBUG
    std::fprintf(stderr, "DBG confirm t=%.9f subj=%u by=%u false=%d\n",
                 ev.time, ev.subject, ev.by, (int)ev.false_confirm);
#endif
    if (ev.false_confirm) continue;
    const auto it = swim_crash_time_.find(ev.subject);
    if (it == swim_crash_time_.end()) continue;
    const double lat = ev.time - it->second.crash_time;
    if (lat < 0.0) continue;
    if (it->second.latency < 0.0 || lat < it->second.latency) {
      it->second.latency = lat;
    }
  }
}

void Driver::swim_attach(core::Pid p) {
  const std::size_t s = sharded_->shard_of(p);
  swim_->attach_peer(sharded_->peer(p), sharded_->engine(s),
                     &sharded_->metrics(s));
}

// ---------------------------------------------------------------------------
// Serial path. This is the original driver body, untouched: the replay
// gates pin its byte-for-byte output at shards == 1.
// ---------------------------------------------------------------------------

std::uint32_t Driver::random_live_pid() {
  const std::vector<std::uint32_t> live = swarm_->status().live_pids();
  assert(!live.empty());
  return live[rng_.bounded(live.size())];
}

void Driver::insert_catalog() {
  for (int i = 0; i < cfg_.files; ++i) {
    // Distinct deterministic keys; ψ spreads them over the ID space.
    const std::uint64_t key =
        (cfg_.seed << 20) + static_cast<std::uint64_t>(i) * 7919u + 1u;
    keys_.push_back(key);
    swarm_->insert_named(key, core::Pid{random_live_pid()});
  }
  swarm_->settle();
}

void Driver::issue_get() {
  if (swarm_->status().live_count() == 0) return;
  const core::Pid at{random_live_pid()};
  const core::FileId f{keys_[rng_.bounded(keys_.size())]};
  ++issued_;
  swarm_->get(f, swarm_->peer(at).target_of(f), at,
              [this](const proto::GetResult& res) {
                ++completed_;
                if (!res.ok) ++faults_;
              });
}

void Driver::schedule_workload(double now) {
  if (cfg_.get_rate <= 0.0) return;
  swarm_->engine().poisson_process(cfg_.get_rate, now + cfg_.epoch_length,
                                   [this] { issue_get(); });
}

void Driver::schedule_epoch_ops(int /*epoch*/, double now) {
  const double L = cfg_.epoch_length;
  sim::Engine& engine = swarm_->engine();
  const int op_count = 1 + static_cast<int>(rng_.bounded(3));
  for (int i = 0; i < op_count; ++i) {
    const double t = now + (0.10 + 0.60 * rng_.uniform01()) * L;
    // Which op runs is drawn now; which PID it hits is resolved at fire
    // time from ground truth (both draws replay identically).
    const std::uint64_t pick = rng_.bounded(4);
    if (pick <= 1 && cfg_.crashes) {
      engine.at(t, [this, t, L] {
        if (swarm_->status().live_count() <= min_live_) return;
        const core::Pid victim{random_live_pid()};
        if (cfg_.silent_crashes) {
          swarm_->crash_silent(victim);
          record_.ops.push_back(
              OpRecord{t, OpKind::kSilentCrash, victim.value()});
          return;  // broken mode: the node never comes back
        }
        swarm_->crash(victim);
        record_.ops.push_back(OpRecord{t, OpKind::kCrash, victim.value()});
        const double back = t + (0.20 + 0.30 * rng_.uniform01()) * L;
        swarm_->engine().at(back, [this, back, victim] {
          if (swarm_->status().is_live(victim.value())) return;
          swarm_->restart(victim);
          record_.ops.push_back(
              OpRecord{back, OpKind::kRestart, victim.value()});
        });
      });
    } else if (pick == 2 && cfg_.churn) {
      engine.at(t, [this, t] {
        if (swarm_->status().live_count() <= min_live_) return;
        const core::Pid leaver{random_live_pid()};
        swarm_->depart(leaver);
        record_.ops.push_back(OpRecord{t, OpKind::kDepart, leaver.value()});
      });
    } else if (pick == 3 && cfg_.churn) {
      engine.at(t, [this, t] {
        if (swarm_->status().dead_count() == 0) return;
        const core::Pid joined = swarm_->join();
        record_.ops.push_back(OpRecord{t, OpKind::kJoin, joined.value()});
      });
    }
  }
}

Report Driver::run_serial() {
  Report report;
  report.config = cfg_;
  insert_catalog();

  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    const double now = swarm_->engine().now();
    const proto::FaultPlan plan =
        make_epoch_plan(cfg_, rng_, epoch, now);
    if (!plan.rules.empty()) {
      // The previous injector (all windows closed, wire drained) is
      // about to be replaced; bank its totals first.
      if (const proto::FaultInjector* old =
              swarm_->network().fault_injector()) {
        const proto::FaultStats& s = old->stats();
        prior_injected_.burst_dropped += s.burst_dropped;
        prior_injected_.partition_dropped += s.partition_dropped;
        prior_injected_.duplicated += s.duplicated;
        prior_injected_.corrupted += s.corrupted;
        prior_injected_.delay_spikes += s.delay_spikes;
      }
      swarm_->network().install_fault_plan(plan);
      for (const proto::FaultRule& r : plan.rules) {
        record_.rules.push_back(RuleRecord{epoch, r});
      }
    }
    schedule_epoch_ops(epoch, now);
    schedule_workload(now);

    swarm_->engine().run_until(now + cfg_.epoch_length);
    swarm_->settle();
    if (!cfg_.silent_crashes) {
      // Anti-entropy repair: converge every live peer's liveness view on
      // the clean post-heal wire. Broken mode skips it — that is the
      // broken part the auditor must catch.
      swarm_->reannounce();
      swarm_->settle();
    }

    proto::FaultStats injected = prior_injected_;
    if (const proto::FaultInjector* inj =
            swarm_->network().fault_injector()) {
      const proto::FaultStats& s = inj->stats();
      injected.burst_dropped += s.burst_dropped;
      injected.partition_dropped += s.partition_dropped;
      injected.duplicated += s.duplicated;
      injected.corrupted += s.corrupted;
      injected.delay_spikes += s.delay_spikes;
    }
    Audit::check(*swarm_, keys_, injected, issued_, completed_, epoch,
                 report.violations);
    report.injected = injected;
  }

  report.record = record_;
  report.workload_issued = issued_;
  report.workload_completed = completed_;
  report.workload_faults = faults_;
  report.messages_sent = swarm_->network().messages_sent();
#if LESSLOG_METRICS_ENABLED
  report.repair_pushes = static_cast<std::int64_t>(
      swarm_->metrics().repair_pushes->value());
#endif
  report.reliability = swarm_->reliability_ledger();
  report.sim_time = swarm_->engine().now();
  return report;
}

// ---------------------------------------------------------------------------
// Sharded path. Same schedule SHAPE, different determinism domain: every
// chaos-stream draw happens at the top level (never inside a shard
// worker), and the swarm advances between draws through run_until()
// barriers. Membership ops and GET arrivals are pre-materialized into a
// (time, seq)-ordered timeline per epoch; a crash's restart is pushed
// into the same timeline when the crash fires, so it survives epoch
// boundaries just like the serial engine.at() chain does.
// ---------------------------------------------------------------------------

namespace {

/// One top-level action in the sharded run. Kinds other than kRestart
/// resolve their target PID at apply time (mirroring the serial driver's
/// fire-time resolution); a restart remembers its crash's victim.
struct TimelineItem {
  double t = 0.0;
  std::uint64_t seq = 0;  ///< push order: total tie-break at equal t
  enum class Kind : std::uint8_t {
    kCrash,
    kDepart,
    kJoin,
    kRestart,
    kGet
  } kind = Kind::kGet;
  std::uint32_t pid = 0;  ///< kRestart only
};

struct TimelineLater {
  bool operator()(const TimelineItem& a, const TimelineItem& b) const {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
};

using Timeline = std::priority_queue<TimelineItem, std::vector<TimelineItem>,
                                     TimelineLater>;

}  // namespace

double Driver::sharded_now() const {
  // Shard clocks agree after run_until(); settle() may leave them at
  // different quiescence points, so the fleet's "now" is the max — any
  // later top-level schedule point is in every shard's future.
  double now = 0.0;
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    now = std::max(now, sharded_->engine(s).now());
  }
  return now;
}

std::uint32_t Driver::sharded_random_live_pid() {
  const std::vector<std::uint32_t> live = sharded_->status().live_pids();
  assert(!live.empty());
  return live[rng_.bounded(live.size())];
}

void Driver::sharded_issue_get() {
  if (sharded_->status().live_count() == 0) return;
  const core::Pid at{sharded_random_live_pid()};
  const core::FileId f{keys_[rng_.bounded(keys_.size())]};
  ++issued_;
  // The callback fires on the issuing client's home shard, so cell
  // `shard_of(at)` has exactly one writer during the window.
  ShardTally* cell = &tally_[sharded_->shard_of(at)];
  sharded_->get(f, sharded_->peer(at).target_of(f), at,
                [cell](const proto::GetResult& res) {
                  ++cell->completed;
                  if (!res.ok) ++cell->faults;
                });
}

std::int64_t Driver::sharded_completed() const {
  std::int64_t sum = 0;
  for (const ShardTally& cell : tally_) sum += cell.completed;
  return sum;
}

std::int64_t Driver::sharded_faults() const {
  std::int64_t sum = 0;
  for (const ShardTally& cell : tally_) sum += cell.faults;
  return sum;
}

void Driver::bank_sharded_injected() {
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    if (const proto::FaultInjector* old =
            sharded_->network(s).fault_injector()) {
      const proto::FaultStats& st = old->stats();
      prior_injected_.burst_dropped += st.burst_dropped;
      prior_injected_.partition_dropped += st.partition_dropped;
      prior_injected_.duplicated += st.duplicated;
      prior_injected_.corrupted += st.corrupted;
      prior_injected_.delay_spikes += st.delay_spikes;
    }
  }
}

proto::FaultStats Driver::sharded_injected() const {
  proto::FaultStats injected = prior_injected_;
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    if (const proto::FaultInjector* inj =
            sharded_->network(s).fault_injector()) {
      const proto::FaultStats& st = inj->stats();
      injected.burst_dropped += st.burst_dropped;
      injected.partition_dropped += st.partition_dropped;
      injected.duplicated += st.duplicated;
      injected.corrupted += st.corrupted;
      injected.delay_spikes += st.delay_spikes;
    }
  }
  return injected;
}

Report Driver::run_sharded() {
  proto::ShardedSwarm& sw = *sharded_;
  Report report;
  report.config = cfg_;

  for (int i = 0; i < cfg_.files; ++i) {
    const std::uint64_t key =
        (cfg_.seed << 20) + static_cast<std::uint64_t>(i) * 7919u + 1u;
    keys_.push_back(key);
    sw.insert_named(key, core::Pid{sharded_random_live_pid()});
  }
  sw.settle();

  const double L = cfg_.epoch_length;
  Timeline timeline;
  std::uint64_t seq = 0;

  for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
    // Epoch anchor. Oracle mode keeps the clock-based anchor (pinned by
    // the sharded replay gates). SWIM mode anchors on quiesce_time() —
    // the last *executed* event — because settle() parks the shard
    // clocks on the final window edge, which depends on the window
    // sequence and hence the shard count; every op time, fault window
    // and tick horizon derives from this anchor, so a layout-dependent
    // anchor would skew the whole detection trace. Every scheduled
    // offset below (>= 0.05 * L) dwarfs the clocks' sub-second edge
    // overshoot, so anchoring slightly behind a clock is safe: the next
    // run_until() realigns all clocks at the op time.
    const double now = swim_ ? sharded_->quiesce_time() : sharded_now();
    const double epoch_end = now + L;
    // Per-epoch detector baselines (deltas feed the SWIM audit checks).
    const membership::SwimRuntime::Tally tally_base =
        swim_ ? swim_->tally() : membership::SwimRuntime::Tally{};
    const std::size_t ops_base = record_.ops.size();
    const std::size_t latency_base = swim_detect_latency_.size();
    if (swim_) swim_->arm(epoch_end);
    const proto::FaultPlan plan = make_epoch_plan(cfg_, rng_, epoch, now);
    if (!plan.rules.empty()) {
      // Every shard network runs the same plan: windows are wall-clock
      // intervals and partition groups are PID sets, so each side of a
      // cross-shard edge applies the same rule. Each shard's injector
      // draws its own stream from the shared plan seed — banked and
      // summed exactly like the serial single injector.
      bank_sharded_injected();
      for (std::size_t s = 0; s < cfg_.shards; ++s) {
        sw.network(s).install_fault_plan(plan);
      }
      for (const proto::FaultRule& r : plan.rules) {
        record_.rules.push_back(RuleRecord{epoch, r});
      }
    }

    // Pre-materialize this epoch's membership ops (same draw order as
    // the serial scheduler: t then pick, per op, whether enabled or not).
    const int op_count = 1 + static_cast<int>(rng_.bounded(3));
    for (int i = 0; i < op_count; ++i) {
      const double t = now + (0.10 + 0.60 * rng_.uniform01()) * L;
      const std::uint64_t pick = rng_.bounded(4);
      if (pick <= 1 && cfg_.crashes) {
        timeline.push({t, seq++, TimelineItem::Kind::kCrash, 0});
      } else if (pick == 2 && cfg_.churn) {
        timeline.push({t, seq++, TimelineItem::Kind::kDepart, 0});
      } else if (pick == 3 && cfg_.churn) {
        timeline.push({t, seq++, TimelineItem::Kind::kJoin, 0});
      }
    }
    // Poisson GET arrivals, pre-drawn from the chaos stream (the serial
    // driver uses the engine's rng here; the sharded domain has S engine
    // streams, so arrivals come from the one top-level stream instead).
    if (cfg_.get_rate > 0.0) {
      double t = now + rng_.exponential(cfg_.get_rate);
      while (t < epoch_end) {
        timeline.push({t, seq++, TimelineItem::Kind::kGet, 0});
        t += rng_.exponential(cfg_.get_rate);
      }
    }

    // Apply the timeline. run_until(t) is the barrier seam: all shard
    // clocks align at t, so a top-level mutation here never schedules
    // into any shard's past. Items carried over from a previous epoch
    // (late restarts) may predate this epoch's start; clamp forward —
    // the run never moves backwards.
    double aligned = now;
    while (!timeline.empty() && timeline.top().t < epoch_end) {
      const TimelineItem item = timeline.top();
      timeline.pop();
      const double at = std::max(item.t, aligned);
      sw.run_until(at);
      aligned = at;
      switch (item.kind) {
        case TimelineItem::Kind::kCrash: {
          if (sw.status().live_count() <= min_live_) break;
          const core::Pid victim{sharded_random_live_pid()};
          if (cfg_.silent_crashes) {
            sw.crash_silent(victim);
            record_.ops.push_back(
                OpRecord{at, OpKind::kSilentCrash, victim.value()});
            break;  // broken mode: the node never comes back
          }
          if (swim_) {
            // No oracle announcement: the fleet must *detect* this.
            sw.crash_unannounced(victim);
            swim_crash_time_[victim.value()] = CrashSample{at, -1.0};
          } else {
            sw.crash(victim);
          }
          record_.ops.push_back(OpRecord{at, OpKind::kCrash, victim.value()});
          const double back = at + (0.20 + 0.30 * rng_.uniform01()) * L;
          timeline.push(
              {back, seq++, TimelineItem::Kind::kRestart, victim.value()});
          break;
        }
        case TimelineItem::Kind::kRestart: {
          if (sw.status().is_live(item.pid)) break;
          // Close the crash's measurement: finalize the earliest confirm
          // seen so far, or forfeit the sample entirely if the restart
          // outran detection (the node was never confirmed dead during
          // its downtime).
          if (swim_) {
            swim_drain_confirms();
            const auto it = swim_crash_time_.find(item.pid);
            if (it != swim_crash_time_.end()) {
              if (it->second.latency >= 0.0) {
                swim_detect_latency_.push_back(it->second.latency);
              }
              swim_crash_time_.erase(it);
            }
          }
          sw.restart(core::Pid{item.pid});
          if (swim_) swim_attach(core::Pid{item.pid});
          record_.ops.push_back(OpRecord{at, OpKind::kRestart, item.pid});
          break;
        }
        case TimelineItem::Kind::kDepart: {
          if (sw.status().live_count() <= min_live_) break;
          const core::Pid leaver{sharded_random_live_pid()};
          sw.depart(leaver);
          record_.ops.push_back(
              OpRecord{at, OpKind::kDepart, leaver.value()});
          break;
        }
        case TimelineItem::Kind::kJoin: {
          if (sw.status().dead_count() == 0) break;
          const core::Pid joined = sw.join();
          if (swim_) swim_attach(joined);
          record_.ops.push_back(OpRecord{at, OpKind::kJoin, joined.value()});
          break;
        }
        case TimelineItem::Kind::kGet:
          sharded_issue_get();
          break;
      }
    }

    sw.run_until(epoch_end);
    sw.settle();
    if (swim_) {
      // Detection convergence replaces the oracle reannounce: extend the
      // detector's horizon one protocol period at a time until every live
      // agent's belief equals ground truth (suspects confirmed, false
      // beliefs refuted), bounded by the configured round cap.
      SwimEpochStats stats;
      stats.round_cap = cfg_.swim_convergence_rounds;
      while (!swim_->converged(sw.status()) &&
             stats.rounds < stats.round_cap) {
        const double t = sharded_->quiesce_time() + cfg_.swim_period;
        swim_->arm(t);
        sw.run_until(t);
        sw.settle();
        ++stats.rounds;
      }
      stats.converged = swim_->converged(sw.status());
#ifdef LESSLOG_SWIM_DEBUG
      {
        const membership::SwimRuntime::Tally d = swim_->tally();
        std::fprintf(stderr,
                     "DBG epoch=%d rounds=%d pings=%lld acks=%lld preq=%lld "
                     "susp=%lld conf=%lld ref=%lld gb=%lld\n",
                     epoch, stats.rounds, (long long)d.pings,
                     (long long)d.acks, (long long)d.ping_reqs,
                     (long long)d.suspects, (long long)d.confirms,
                     (long long)d.refutations, (long long)d.gossip_bytes);
      }
      if (!stats.converged) {
        const util::StatusWord& truth = sw.status();
        for (std::uint32_t p = 0; p < util::space_size(cfg_.m); ++p) {
          membership::SwimAgent* a = swim_->agent(core::Pid{p});
          if (a == nullptr || !a->enabled()) continue;
          const util::StatusWord& w = a->view().word();
          for (std::uint32_t q = 0; q < util::space_size(cfg_.m); ++q) {
            if (w.is_live(q) != truth.is_live(q)) {
              std::fprintf(stderr, "DBG epoch=%d agent=%u bit=%u truth=%s\n",
                           epoch, p, q,
                           truth.is_live(q) ? "live" : "dead");
            }
          }
        }
      }
#endif
      // Fold this epoch's confirms and close out detected crashes: once
      // the detector has converged, a crash's earliest confirm is final
      // (any later confirm of the same death has a later timestamp).
      swim_drain_confirms();
      for (auto it = swim_crash_time_.begin();
           it != swim_crash_time_.end();) {
        if (it->second.latency >= 0.0) {
          swim_detect_latency_.push_back(it->second.latency);
          it = swim_crash_time_.erase(it);
        } else {
          ++it;
        }
      }
      const membership::SwimRuntime::Tally tly = swim_->tally();
      stats.clean_epoch =
          plan.rules.empty() && record_.ops.size() == ops_base;
      stats.suspects = tly.suspects - tally_base.suspects;
      stats.false_suspects = tly.false_suspects - tally_base.false_suspects;
      stats.false_confirms = tly.false_confirms - tally_base.false_confirms;
      stats.detection_latency.assign(
          swim_detect_latency_.begin() +
              static_cast<std::ptrdiff_t>(latency_base),
          swim_detect_latency_.end());
      Audit::check_swim(stats, epoch, report.violations);
      report.swim_epochs.push_back(std::move(stats));
    } else if (!cfg_.silent_crashes) {
      sw.reannounce();
      sw.settle();
    }

    completed_ = sharded_completed();
    const proto::FaultStats injected = sharded_injected();
    Audit::check(sw, keys_, injected, issued_, completed_, epoch,
                 report.violations);
    report.injected = injected;
  }

  report.record = record_;
  report.workload_issued = issued_;
  report.workload_completed = sharded_completed();
  report.workload_faults = sharded_faults();
  report.messages_sent = sw.messages_sent();
#if LESSLOG_METRICS_ENABLED
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    report.repair_pushes += static_cast<std::int64_t>(
        sw.metrics(s).repair_pushes->value());
  }
#endif
  report.reliability = sw.reliability_ledger();
  report.sim_time = swim_ ? sharded_->quiesce_time() : sharded_now();
  if (swim_) {
    report.swim = swim_->tally();
    report.detection_latency = swim_detect_latency_;
  }
  return report;
}

}  // namespace lesslog::chaos
