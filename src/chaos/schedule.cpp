#include "lesslog/chaos/schedule.hpp"

#include <cmath>
#include <stdexcept>

#include "lesslog/util/bits.hpp"

namespace lesslog::chaos {

void ChaosConfig::validate() const {
  if (m < 1 || m > 20) {
    throw std::invalid_argument("ChaosConfig: m must be in [1, 20]");
  }
  if (b < 0 || b >= m) {
    throw std::invalid_argument("ChaosConfig: b must be in [0, m)");
  }
  if (nodes < 2 || nodes > util::space_size(m)) {
    throw std::invalid_argument("ChaosConfig: nodes must be in [2, 2^m]");
  }
  if (epochs < 1) {
    throw std::invalid_argument("ChaosConfig: epochs must be positive");
  }
  if (std::isnan(epoch_length) || epoch_length <= 0.0) {
    throw std::invalid_argument(
        "ChaosConfig: epoch_length must be positive");
  }
  if (!(fault_intensity >= 0.0 && fault_intensity <= 1.0)) {
    throw std::invalid_argument(
        "ChaosConfig: fault_intensity must be in [0, 1]");
  }
  // files == 0 is the membership-only configuration (abl_membership):
  // with no catalog there is no placement or repair traffic, so nothing
  // in the run consumes a shard-seeded engine RNG stream and the whole
  // detection trace is identical for every shard count.
  if (files < 0) {
    throw std::invalid_argument("ChaosConfig: files must be non-negative");
  }
  if (std::isnan(get_rate) || get_rate < 0.0) {
    throw std::invalid_argument(
        "ChaosConfig: get_rate must be non-negative");
  }
  if (get_rate > 0.0 && files < 1) {
    throw std::invalid_argument(
        "ChaosConfig: a GET workload (get_rate > 0) needs files >= 1");
  }
  if (shards < 1 || shards > util::space_size(m)) {
    throw std::invalid_argument("ChaosConfig: shards must be in [1, 2^m]");
  }
  if (swim && silent_crashes) {
    throw std::invalid_argument(
        "ChaosConfig: swim and silent_crashes are exclusive (SWIM's whole "
        "point is detecting unannounced crashes)");
  }
  if (std::isnan(swim_period) || swim_period <= 0.0) {
    throw std::invalid_argument("ChaosConfig: swim_period must be positive");
  }
  if (std::isnan(swim_direct_timeout) || swim_direct_timeout <= 0.0 ||
      swim_direct_timeout >= swim_period) {
    throw std::invalid_argument(
        "ChaosConfig: swim_direct_timeout must be in (0, swim_period)");
  }
  if (swim_proxies < 0 || swim_suspect_periods < 1 ||
      swim_gossip_repeats < 1 || swim_convergence_rounds < 1) {
    throw std::invalid_argument("ChaosConfig: bad SWIM tunables");
  }
  if (std::isnan(net_jitter) || net_jitter < 0.0) {
    throw std::invalid_argument(
        "ChaosConfig: net_jitter must be non-negative");
  }
  if (std::isnan(hedge_percentile) ||
      (hedge_percentile != 0.0 &&
       (hedge_percentile < 0.5 || hedge_percentile >= 1.0))) {
    throw std::invalid_argument(
        "ChaosConfig: hedge_percentile must be 0 (off) or in [0.5, 1)");
  }
  if (busy_budget < 0) {
    throw std::invalid_argument(
        "ChaosConfig: busy_budget must be non-negative");
  }
  if (std::isnan(busy_refill) || busy_refill < 0.0) {
    throw std::invalid_argument(
        "ChaosConfig: busy_refill must be non-negative");
  }
  if (busy_budget > 0 && busy_refill <= 0.0) {
    throw std::invalid_argument(
        "ChaosConfig: a positive busy_budget needs a positive busy_refill");
  }
}

const char* op_kind_name(OpKind k) noexcept {
  switch (k) {
    case OpKind::kCrash: return "crash";
    case OpKind::kRestart: return "restart";
    case OpKind::kDepart: return "depart";
    case OpKind::kJoin: return "join";
    case OpKind::kSilentCrash: return "silent_crash";
  }
  return "???";
}

namespace {

/// A window inside the epoch: starts in the first 40%, closes before 95%
/// of the epoch has passed (the settle point is always fault-free).
struct Window {
  double start;
  double stop;
};

Window draw_window(util::Rng& rng, double now, double length) {
  const double start = now + (0.05 + 0.35 * rng.uniform01()) * length;
  const double stop =
      std::min(start + (0.20 + 0.40 * rng.uniform01()) * length,
               now + 0.95 * length);
  return {start, stop};
}

}  // namespace

proto::FaultPlan make_epoch_plan(const ChaosConfig& cfg, util::Rng& rng,
                                 int epoch, double now) {
  const double I = cfg.fault_intensity;
  const double L = cfg.epoch_length;
  proto::FaultPlan plan;
  // Per-epoch injector stream: distinct per (config seed, epoch), so
  // reinstalling a plan each epoch never replays the previous epoch's
  // fault decisions.
  plan.seed =
      cfg.seed ^ (std::uint64_t{0x9E3779B97F4A7C15u} *
                  static_cast<std::uint64_t>(epoch + 1));
  if (I <= 0.0) return plan;
  if (cfg.bursts) {
    const Window w = draw_window(rng, now, L);
    plan.rules.push_back(proto::FaultRule::burst_loss(
        w.start, w.stop,
        /*p_good_to_bad=*/0.01 + 0.05 * I,
        /*p_bad_to_good=*/0.25,
        /*loss_bad=*/0.5 + 0.5 * I));
  }
  if (cfg.corruption) {
    const Window w = draw_window(rng, now, L);
    plan.rules.push_back(
        proto::FaultRule::corrupt(w.start, w.stop, 0.03 * I));
  }
  if (cfg.duplicates) {
    const Window w = draw_window(rng, now, L);
    plan.rules.push_back(
        proto::FaultRule::duplicate(w.start, w.stop, 0.08 * I));
  }
  if (cfg.delay_spikes) {
    // 0.4 s spikes versus the client's 0.25 s timeout: a spiked reply
    // races its own retransmission, which is exactly the reordering the
    // correlation-id machinery must absorb.
    const Window w = draw_window(rng, now, L);
    plan.rules.push_back(
        proto::FaultRule::delay_spike(w.start, w.stop, 0.04 * I, 0.4));
  }
  if (cfg.partitions && (epoch % 2 == 1)) {
    // A random ~third of the ID space splits off, healing by 70% of the
    // epoch so cross-partition retries can still resolve inside it.
    std::vector<std::uint32_t> group;
    for (std::uint32_t p = 0; p < util::space_size(cfg.m); ++p) {
      if (rng.bernoulli(1.0 / 3.0)) group.push_back(p);
    }
    if (!group.empty() && group.size() < util::space_size(cfg.m)) {
      const double start = now + (0.10 + 0.20 * rng.uniform01()) * L;
      const double stop = now + 0.70 * L;
      plan.rules.push_back(
          proto::FaultRule::partition(start, stop, std::move(group)));
    }
  }
  return plan;
}

}  // namespace lesslog::chaos
