#include "lesslog/chaos/audit.hpp"

#include "lesslog/proto/sharded_swarm.hpp"
#include "lesslog/util/bits.hpp"
#include "lesslog/util/hashing.hpp"

namespace lesslog::chaos {

namespace {

void violate(std::vector<Violation>& out, int epoch, const char* check,
             std::string detail) {
  out.push_back(Violation{epoch, check, std::move(detail)});
}

}  // namespace

template <typename AnySwarm>
bool Audit::live_copy_exists(AnySwarm& swarm, core::FileId f) {
  const util::StatusWord& truth = swarm.status();
  for (std::uint32_t p = 0; p < truth.capacity(); ++p) {
    if (truth.is_live(p) && swarm.peer(core::Pid{p}).store().has(f)) {
      return true;
    }
  }
  return false;
}

template <typename AnySwarm>
void Audit::check(AnySwarm& swarm,
                  const std::vector<std::uint64_t>& keys,
                  const proto::FaultStats& injected, std::int64_t issued,
                  std::int64_t completed, int epoch,
                  std::vector<Violation>& out) {
  // 1. Counter reconciliation at quiescence (aggregate accessors: one
  // network's counters, or the sum over shards — cross-shard datagrams
  // are counted once on each side of the boundary, so the identity holds
  // for any shard count).
  const std::int64_t in = swarm.messages_sent() + injected.duplicated;
  const std::int64_t terminal = swarm.delivered() + swarm.dropped() +
                                swarm.undeliverable() + swarm.corrupted() +
                                injected.burst_dropped +
                                injected.partition_dropped;
  if (in != terminal) {
    violate(out, epoch, "counter_reconciliation",
            "sent+dup=" + std::to_string(in) +
                " != delivered+dropped+undeliverable+corrupted+burst+"
                "partition=" +
                std::to_string(terminal));
  }

  // 2. Corruption accounting: corrupted at send == rejected at decode.
  if (injected.corrupted != swarm.corrupted()) {
    violate(out, epoch, "corruption_accounting",
            "injected=" + std::to_string(injected.corrupted) +
                " decode_rejected=" + std::to_string(swarm.corrupted()));
  }

  // 3. Workload termination.
  if (issued != completed) {
    violate(out, epoch, "workload_termination",
            "issued=" + std::to_string(issued) +
                " completed=" + std::to_string(completed));
  }

  // 3b. Reliability-ledger reconciliation, exact at quiescence in every
  // build flavor (plain ints, not obs cells): every GET the clients ever
  // issued — workload, prior audit probes, hedge-capable or shed — was
  // resolved exactly once, and every hedge leg launched was either won
  // or cancelled, never both and never neither, no matter how many
  // replies the wire dropped or duplicated. Read before the probe GETs
  // below mutate the ledger.
  const proto::ReliabilityLedger ledger = swarm.reliability_ledger();
  if (ledger.issued != ledger.ok + ledger.faults) {
    violate(out, epoch, "reliability_ledger",
            "issued=" + std::to_string(ledger.issued) +
                " != ok+faults=" + std::to_string(ledger.ok) + "+" +
                std::to_string(ledger.faults));
  }
  if (ledger.hedges_launched != ledger.hedge_won + ledger.hedge_cancelled) {
    violate(out, epoch, "hedge_reconciliation",
            "hedges_launched=" + std::to_string(ledger.hedges_launched) +
                " != won+cancelled=" + std::to_string(ledger.hedge_won) +
                "+" + std::to_string(ledger.hedge_cancelled));
  }

  // 4. Status convergence: live peers' local words vs ground truth.
  const util::StatusWord& truth = swarm.status();
  for (std::uint32_t p = 0; p < truth.capacity(); ++p) {
    if (!truth.is_live(p)) continue;
    if (swarm.peer(core::Pid{p}).status() != truth) {
      violate(out, epoch, "status_convergence",
              "peer " + std::to_string(p) +
                  " status word diverges from ground truth");
    }
  }

  // 5. Replica availability, by actually asking: one GET probe per file
  // from the lowest live PID.
  if (truth.live_count() == 0) return;
  std::uint32_t prober = 0;
  while (!truth.is_live(prober)) ++prober;
  struct Probe {
    std::uint64_t key;
    bool has_live_copy;
    bool done = false;
    bool ok = false;
  };
  std::vector<Probe> probes;
  probes.reserve(keys.size());
  for (const std::uint64_t key : keys) {
    const core::FileId f{key};
    probes.push_back(Probe{key, live_copy_exists(swarm, f)});
    Probe* slot = &probes.back();
    const core::Pid r = swarm.peer(core::Pid{prober}).target_of(f);
    swarm.get(f, r, core::Pid{prober},
              [slot](const proto::GetResult& res) {
                slot->done = true;
                slot->ok = res.ok;
              });
  }
  swarm.settle();
  for (const Probe& probe : probes) {
    if (!probe.done) {
      violate(out, epoch, "probe_termination",
              "GET for key " + std::to_string(probe.key) +
                  " never completed");
      continue;
    }
    if (probe.has_live_copy && !probe.ok) {
      violate(out, epoch, "replica_availability",
              "GET for key " + std::to_string(probe.key) +
                  " faulted while a live replica exists");
    }
    if (!probe.has_live_copy && probe.ok) {
      violate(out, epoch, "replica_availability",
              "GET for key " + std::to_string(probe.key) +
                  " succeeded with no live replica (ghost copy)");
    }
  }
}

void Audit::check_swim(const SwimEpochStats& stats, int epoch,
                       std::vector<Violation>& out) {
  // 6. Detection convergence within the round cap.
  if (!stats.converged) {
    violate(out, epoch, "detection_convergence",
            "detector beliefs still diverge from ground truth after " +
                std::to_string(stats.rounds) + "/" +
                std::to_string(stats.round_cap) + " extra periods");
  }
  // 7. Clean-wire suspicion: with no fault windows and no membership ops
  // this epoch, every probe must have been answered in time.
  if (stats.clean_epoch && stats.suspects > 0) {
    violate(out, epoch, "swim_false_suspicion",
            std::to_string(stats.suspects) +
                " suspicion(s) raised on a fault-free epoch (" +
                std::to_string(stats.false_suspects) + " on live nodes)");
  }
}

template bool Audit::live_copy_exists<proto::Swarm>(proto::Swarm&,
                                                    core::FileId);
template bool Audit::live_copy_exists<proto::ShardedSwarm>(
    proto::ShardedSwarm&, core::FileId);
template void Audit::check<proto::Swarm>(
    proto::Swarm&, const std::vector<std::uint64_t>&,
    const proto::FaultStats&, std::int64_t, std::int64_t, int,
    std::vector<Violation>&);
template void Audit::check<proto::ShardedSwarm>(
    proto::ShardedSwarm&, const std::vector<std::uint64_t>&,
    const proto::FaultStats&, std::int64_t, std::int64_t, int,
    std::vector<Violation>&);

}  // namespace lesslog::chaos
