#include "lesslog/sim/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <iomanip>
#include <sstream>

#include "lesslog/util/csv.hpp"

namespace lesslog::sim {

FigureData::FigureData(std::string title, std::string x_label,
                       std::vector<double> x_values)
    : title_(std::move(title)),
      x_label_(std::move(x_label)),
      xs_(std::move(x_values)) {
  assert(!xs_.empty());
}

void FigureData::add_series(std::string name, std::vector<double> values) {
  assert(values.size() == xs_.size());
  series_.push_back(Series{std::move(name), std::move(values)});
}

const Series* FigureData::find(const std::string& name) const {
  for (const Series& s : series_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

util::Table FigureData::to_table() const {
  std::vector<std::string> headers{x_label_};
  for (const Series& s : series_) headers.push_back(s.name);
  util::Table table(std::move(headers));
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    std::vector<util::Cell> row;
    row.emplace_back(xs_[i]);
    for (const Series& s : series_) row.emplace_back(s.values[i]);
    table.add_row(std::move(row));
  }
  return table;
}

std::string FigureData::to_markdown(int precision) const {
  std::ostringstream out;
  out << "| " << x_label_;
  for (const Series& s : series_) out << " | " << s.name;
  out << " |\n|";
  for (std::size_t i = 0; i <= series_.size(); ++i) out << "---|";
  out << "\n";
  out << std::fixed << std::setprecision(precision);
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    out << "| " << xs_[i];
    for (const Series& s : series_) out << " | " << s.values[i];
    out << " |\n";
  }
  return out.str();
}

std::string FigureData::ascii_chart(int height) const {
  assert(height >= 2);
  static constexpr char kGlyphs[] = "*o+x#@";
  double peak = 1e-9;
  for (const Series& s : series_) {
    for (double v : s.values) peak = std::max(peak, v);
  }
  // Rows top-down; each series paints its scaled value per x column.
  const std::size_t cols = xs_.size();
  std::vector<std::string> canvas(
      static_cast<std::size_t>(height), std::string(cols, ' '));
  for (std::size_t si = 0; si < series_.size(); ++si) {
    const char glyph = kGlyphs[si % (sizeof(kGlyphs) - 1)];
    for (std::size_t i = 0; i < cols; ++i) {
      const double frac = series_[si].values[i] / peak;
      int row = height - 1 -
                static_cast<int>(std::lround(frac * (height - 1)));
      row = std::clamp(row, 0, height - 1);
      canvas[static_cast<std::size_t>(row)][i] = glyph;
    }
  }
  std::ostringstream out;
  out << title_ << "  (peak = " << peak << ")\n";
  for (const std::string& line : canvas) out << "|" << line << "\n";
  out << "+" << std::string(cols, '-') << "  " << x_label_ << "\n";
  out << "legend:";
  for (std::size_t si = 0; si < series_.size(); ++si) {
    out << "  " << kGlyphs[si % (sizeof(kGlyphs) - 1)] << " = "
        << series_[si].name;
  }
  out << "\n";
  return out.str();
}

void FigureData::write_csv(const std::string& path) const {
  std::vector<std::string> headers{x_label_};
  for (const Series& s : series_) headers.push_back(s.name);
  util::CsvWriter csv(path, headers);
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    std::vector<util::Cell> row;
    row.emplace_back(xs_[i]);
    for (const Series& s : series_) row.emplace_back(s.values[i]);
    csv.add_row(row);
  }
}

bool FigureData::dominates(const std::string& a, const std::string& b,
                           double slack) const {
  const Series* sa = find(a);
  const Series* sb = find(b);
  assert(sa != nullptr && sb != nullptr);
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    if (sa->values[i] > sb->values[i] * (1.0 + slack)) return false;
  }
  return true;
}

bool FigureData::roughly_increasing(const std::string& name,
                                    double slack) const {
  const Series* s = find(name);
  assert(s != nullptr);
  for (std::size_t i = 1; i < s->values.size(); ++i) {
    if (s->values[i] + slack < s->values[i - 1]) return false;
  }
  return true;
}

}  // namespace lesslog::sim
