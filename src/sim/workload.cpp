#include "lesslog/sim/workload.hpp"

#include <cassert>
#include <cmath>
#include <numeric>

namespace lesslog::sim {

double Workload::total() const noexcept {
  return std::accumulate(rate.begin(), rate.end(), 0.0);
}

Workload uniform_workload(const util::LivenessView& view, double total_rate) {
  assert(total_rate >= 0.0);
  const util::StatusWord& live = view.word();
  Workload w;
  w.rate.assign(live.capacity(), 0.0);
  const std::uint32_t n = live.live_count();
  if (n == 0) return w;
  const double per_node = total_rate / static_cast<double>(n);
  for (std::uint32_t p = 0; p < live.capacity(); ++p) {
    if (live.is_live(p)) w.rate[p] = per_node;
  }
  return w;
}

Workload locality_workload(const util::LivenessView& view, double total_rate,
                           util::Rng& rng, double hot_node_fraction,
                           double hot_request_fraction) {
  assert(total_rate >= 0.0);
  const util::StatusWord& live = view.word();
  assert(hot_node_fraction > 0.0 && hot_node_fraction <= 1.0);
  assert(hot_request_fraction >= 0.0 && hot_request_fraction <= 1.0);
  Workload w;
  w.rate.assign(live.capacity(), 0.0);
  const std::vector<std::uint32_t> pids = live.live_pids();
  if (pids.empty()) return w;

  // At least one hot node, never more than all of them.
  const auto n = static_cast<std::uint32_t>(pids.size());
  const auto hot_count = std::min(
      n, std::max(1u, static_cast<std::uint32_t>(
                          std::lround(hot_node_fraction *
                                      static_cast<double>(n)))));
  std::vector<std::uint32_t> order(pids);
  rng.shuffle(order);

  const double hot_rate =
      hot_count == n ? total_rate : total_rate * hot_request_fraction;
  const double cold_rate = total_rate - hot_rate;
  const double per_hot = hot_rate / static_cast<double>(hot_count);
  const double per_cold =
      hot_count == n ? 0.0
                     : cold_rate / static_cast<double>(n - hot_count);
  for (std::uint32_t i = 0; i < n; ++i) {
    w.rate[order[i]] = i < hot_count ? per_hot : per_cold;
  }
  return w;
}

std::vector<double> zipf_weights(std::size_t n, double s) {
  assert(n > 0);
  std::vector<double> w(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    sum += w[i];
  }
  for (double& x : w) x /= sum;
  return w;
}

}  // namespace lesslog::sim
