#include "lesslog/sim/catalog.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "lesslog/util/hashing.hpp"
#include "lesslog/util/stats.hpp"

namespace lesslog::sim {

namespace {

// One file's routing state. The tree/view pair is heap-allocated once so
// the view's pointer into the tree stays valid as files move in vectors.
struct FileState {
  explicit FileState(int m, int b, core::Pid target)
      : tree(m, target), view(tree, b) {}
  core::LookupTree tree;
  core::SubtreeView view;
  CopyMap has_copy;
  CopyBits copy_bits;    ///< packed mirror of has_copy
  Workload demand;       ///< this file's share of every node's rate
  LoadReport report;     ///< cached; recomputed only when copies change
};

LoadReport solve_file(const FileState& f, int b,
                      const util::StatusWord& live) {
  return b == 0 ? solve_load(f.tree, f.has_copy, live, f.demand)
                : solve_load(f.view, f.has_copy, live, f.demand);
}

}  // namespace

CatalogResult run_catalog_experiment(const CatalogConfig& cfg,
                                     const PlacementFn& policy) {
  assert(cfg.files > 0);
  util::Rng rng(cfg.seed);
  const std::uint32_t slots = util::space_size(cfg.m);

  util::StatusWord live(cfg.m);
  for (std::uint32_t p = 0; p < slots; ++p) live.set_live(p);
  const auto dead_count = static_cast<std::uint32_t>(
      std::lround(cfg.dead_fraction * static_cast<double>(slots)));
  for (std::uint32_t dead : rng.sample_indices(slots, dead_count)) {
    live.set_dead(dead);
  }

  // Per-node total request rate, split over the catalog by Zipf weight.
  const Workload node_rates =
      cfg.workload == WorkloadKind::kUniform
          ? uniform_workload(util::BorrowedView(live), cfg.total_rate)
          : locality_workload(util::BorrowedView(live), cfg.total_rate, rng,
                              cfg.hot_node_fraction,
                              cfg.hot_request_fraction);
  const std::vector<double> weights = zipf_weights(cfg.files, cfg.zipf_s);

  std::vector<std::unique_ptr<FileState>> files;
  files.reserve(cfg.files);
  for (std::uint32_t i = 0; i < cfg.files; ++i) {
    const core::Pid target{util::psi_u64(cfg.seed * 131071u + i, cfg.m)};
    auto state = std::make_unique<FileState>(cfg.m, cfg.b, target);
    state->has_copy.assign(slots, 0);
    state->copy_bits.reset(slots);
    for (const core::Pid holder : state->view.insertion_targets(live)) {
      state->has_copy[holder.value()] = 1;
      state->copy_bits.set(holder.value());
    }
    state->demand.rate.assign(slots, 0.0);
    for (std::uint32_t p = 0; p < slots; ++p) {
      state->demand.rate[p] = node_rates.rate[p] * weights[i];
    }
    state->report = solve_file(*state, cfg.b, live);
    files.push_back(std::move(state));
  }

  std::vector<int> replicas_by_rank(cfg.files, 0);
  int replicas = 0;
  bool balanced = false;
  std::vector<double> served_total(slots, 0.0);

  while (true) {
    // Aggregate served load; find the most overloaded node.
    std::fill(served_total.begin(), served_total.end(), 0.0);
    for (const auto& f : files) {
      for (std::uint32_t p = 0; p < slots; ++p) {
        served_total[p] += f->report.served[p];
      }
    }
    std::uint32_t worst = 0;
    for (std::uint32_t p = 1; p < slots; ++p) {
      if (served_total[p] > served_total[worst]) worst = p;
    }
    if (served_total[worst] <= cfg.capacity) {
      balanced = true;
      break;
    }
    if (replicas >= cfg.max_replicas) break;

    // The overloaded node sheds its locally hottest file — information it
    // holds without any client-access log.
    std::size_t hottest = 0;
    double hottest_load = -1.0;
    for (std::size_t i = 0; i < files.size(); ++i) {
      const double load = files[i]->report.served[worst];
      if (load > hottest_load &&
          files[i]->has_copy[worst] != 0) {  // it can only shed what it holds
        hottest_load = load;
        hottest = i;
      }
    }
    if (hottest_load <= 0.0) break;  // overload not sheddable

    FileState& f = *files[hottest];
    const PlacementContext ctx{
        f.tree,     f.view,
        core::Pid{worst},
        live,       f.has_copy,
        [&f]() -> const LoadReport& { return f.report; },
        f.demand,   rng,
        &f.copy_bits};
    const std::optional<core::Pid> placement = policy(ctx);
    if (!placement.has_value() || f.has_copy[placement->value()] != 0 ||
        !live.is_live(placement->value())) {
      break;  // policy exhausted on the hottest file: cannot balance
    }
    f.has_copy[placement->value()] = 1;
    f.copy_bits.set(placement->value());
    f.report = solve_file(f, cfg.b, live);  // only this file's flows moved
    ++replicas;
    ++replicas_by_rank[hottest];
  }

  CatalogResult result;
  result.replicas_created = replicas;
  result.balanced = balanced;
  result.replicas_by_rank = std::move(replicas_by_rank);
  result.live_nodes = live.live_count();
  std::vector<double> live_loads;
  for (std::uint32_t p = 0; p < slots; ++p) {
    if (live.is_live(p)) live_loads.push_back(served_total[p]);
    result.final_max_load = std::max(result.final_max_load, served_total[p]);
  }
  result.fairness = util::jain_fairness(live_loads);
  for (const auto& f : files) {
    for (std::uint32_t p = 0; p < slots; ++p) {
      result.total_copies += f->has_copy[p];
    }
  }
  return result;
}

}  // namespace lesslog::sim
