#include "lesslog/sim/load_solver.hpp"

#include <algorithm>
#include <cassert>

#include "lesslog/core/routing.hpp"

namespace lesslog::sim {

namespace {

template <typename RouteFn>
LoadReport solve_generic(std::uint32_t capacity_slots,
                         [[maybe_unused]] const util::StatusWord& live,
                         const Workload& demand, const RouteFn& route) {
  assert(demand.size() == capacity_slots);
  LoadReport report;
  report.served.assign(capacity_slots, 0.0);
  report.forwarded.assign(capacity_slots, 0.0);

  double weighted_hops = 0.0;
  double total_rate = 0.0;
  for (std::uint32_t pid = 0; pid < capacity_slots; ++pid) {
    const double rate = demand.rate[pid];
    if (rate <= 0.0) continue;
    assert(live.is_live(pid) && "dead nodes issue no requests");
    const core::RouteResult r = route(core::Pid{pid});
    total_rate += rate;
    weighted_hops += rate * static_cast<double>(r.hops());
    if (r.served_by.has_value()) {
      report.served[r.served_by->value()] += rate;
      // Every node on the path before the server forwards the stream.
      for (const core::Pid p : r.path) {
        if (p == *r.served_by) break;
        report.forwarded[p.value()] += rate;
      }
    } else {
      report.fault_rate += rate;
      for (const core::Pid p : r.path) report.forwarded[p.value()] += rate;
    }
  }
  report.mean_hops = total_rate > 0.0 ? weighted_hops / total_rate : 0.0;

  const auto max_it =
      std::max_element(report.served.begin(), report.served.end());
  if (max_it != report.served.end()) {
    report.max_served = *max_it;
    report.max_served_pid = static_cast<std::uint32_t>(
        std::distance(report.served.begin(), max_it));
  }
  return report;
}

}  // namespace

std::vector<std::uint32_t> LoadReport::overloaded(double capacity) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t pid = 0; pid < served.size(); ++pid) {
    if (served[pid] > capacity) out.push_back(pid);
  }
  std::sort(out.begin(), out.end(), [this](std::uint32_t a, std::uint32_t b) {
    return served[a] > served[b];
  });
  return out;
}

LoadReport solve_load(const core::LookupTree& tree, const CopyMap& has_copy,
                      const util::StatusWord& live, const Workload& demand) {
  const core::HasCopyFn copy_fn = [&has_copy](core::Pid p) {
    return has_copy[p.value()] != 0;
  };
  return solve_generic(
      live.capacity(), live, demand,
      [&](core::Pid k) { return core::route_get(tree, k, live, copy_fn); });
}

LoadReport solve_load(const core::SubtreeView& view, const CopyMap& has_copy,
                      const util::StatusWord& live, const Workload& demand) {
  const core::HasCopyFn copy_fn = [&has_copy](core::Pid p) {
    return has_copy[p.value()] != 0;
  };
  return solve_generic(live.capacity(), live, demand, [&](core::Pid k) {
    return view.route_get(k, live, copy_fn);
  });
}

}  // namespace lesslog::sim
