#include "lesslog/sim/load_solver.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "lesslog/core/routing.hpp"
#include "lesslog/util/bits.hpp"

namespace lesslog::sim {

namespace {

constexpr std::uint32_t kNone = core::AncestorTable::kNone;

/// Heap ordering for the lazy max tracker: the top is the largest served
/// value, lowest PID on ties — matching std::max_element over served[],
/// which returns the first (lowest-PID) maximum.
bool heap_less(const std::pair<double, std::uint32_t>& a,
               const std::pair<double, std::uint32_t>& b) {
  return a.first < b.first || (a.first == b.first && a.second > b.second);
}

template <typename RouteFn>
LoadReport solve_generic(std::uint32_t capacity_slots,
                         [[maybe_unused]] const util::StatusWord& live,
                         const Workload& demand, const RouteFn& route) {
  if (demand.size() != capacity_slots) {
    throw std::invalid_argument(
        "solve_load: workload size does not match the liveness map");
  }
  LoadReport report;
  report.served.assign(capacity_slots, 0.0);
  report.forwarded.assign(capacity_slots, 0.0);

  double weighted_hops = 0.0;
  double total_rate = 0.0;
  for (std::uint32_t pid = 0; pid < capacity_slots; ++pid) {
    const double rate = demand.rate[pid];
    if (rate <= 0.0) continue;
    assert(live.is_live(pid) && "dead nodes issue no requests");
    const core::RouteResult r = route(core::Pid{pid});
    total_rate += rate;
    weighted_hops += rate * static_cast<double>(r.hops());
    if (r.served_by.has_value()) {
      report.served[r.served_by->value()] += rate;
      // Every node on the path before the server forwards the stream.
      for (const core::Pid p : r.path) {
        if (p == *r.served_by) break;
        report.forwarded[p.value()] += rate;
      }
    } else {
      report.fault_rate += rate;
      for (const core::Pid p : r.path) report.forwarded[p.value()] += rate;
    }
  }
  report.mean_hops = total_rate > 0.0 ? weighted_hops / total_rate : 0.0;

  const auto max_it =
      std::max_element(report.served.begin(), report.served.end());
  if (max_it != report.served.end()) {
    report.max_served = *max_it;
    report.max_served_pid = static_cast<std::uint32_t>(
        std::distance(report.served.begin(), max_it));
  }
  return report;
}

}  // namespace

std::vector<std::uint32_t> LoadReport::overloaded(double capacity) const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t pid = 0; pid < served.size(); ++pid) {
    if (served[pid] > capacity) out.push_back(pid);
  }
  std::sort(out.begin(), out.end(), [this](std::uint32_t a, std::uint32_t b) {
    return served[a] > served[b];
  });
  return out;
}

std::optional<std::uint32_t> LoadReport::most_overloaded(
    double capacity) const {
  std::optional<std::uint32_t> best;
  double best_load = capacity;
  for (std::uint32_t pid = 0; pid < served.size(); ++pid) {
    // Strict > keeps the first (lowest-PID) maximum on ties.
    if (served[pid] > best_load) {
      best = pid;
      best_load = served[pid];
    }
  }
  return best;
}

LoadReport solve_load(const core::LookupTree& tree, const CopyMap& has_copy,
                      const util::StatusWord& live, const Workload& demand) {
  const core::HasCopyFn copy_fn = [&has_copy](core::Pid p) {
    return has_copy[p.value()] != 0;
  };
  return solve_generic(
      live.capacity(), live, demand,
      [&](core::Pid k) { return core::route_get(tree, k, live, copy_fn); });
}

LoadReport solve_load(const core::SubtreeView& view, const CopyMap& has_copy,
                      const util::StatusWord& live, const Workload& demand) {
  const core::HasCopyFn copy_fn = [&has_copy](core::Pid p) {
    return has_copy[p.value()] != 0;
  };
  return solve_generic(live.capacity(), live, demand, [&](core::Pid k) {
    return view.route_get(k, live, copy_fn);
  });
}

IncrementalLoadSolver::IncrementalLoadSolver(const core::SubtreeView& view,
                                             const util::StatusWord& live,
                                             const Workload& demand)
    : view_(view),
      live_(&live),
      demand_(&demand),
      slots_(util::space_size(view.tree().width())),
      subtree_count_(view.subtree_count()) {
  if (demand.size() != slots_) {
    throw std::invalid_argument(
        "IncrementalLoadSolver: workload size does not match the ID space");
  }
  anchor_ = view_.ancestor_table(live);
  sid_of_.resize(slots_);
  svid_of_.resize(slots_);
  for (std::uint32_t p = 0; p < slots_; ++p) {
    sid_of_[p] = view_.subtree_id(core::Pid{p});
    svid_of_[p] = view_.subtree_vid(core::Pid{p});
  }
  const std::uint32_t top = util::mask_of(view_.subtree_width());
  holder_.assign(subtree_count_, kNone);
  root_live_.assign(subtree_count_, 0);
  for (std::uint32_t sid = 0; sid < subtree_count_; ++sid) {
    root_live_[sid] =
        live.is_live(view_.subtree_root(sid).value()) ? char{1} : char{0};
    holder_[sid] = find_live_scan(sid, top);
  }
  // Routing forest over the live nodes in CSR form: P(c) is a child of its
  // within-subtree first-alive-ancestor; live nodes whose subtree
  // ancestors are all dead are forest roots, grouped by subtree.
  child_start_.assign(slots_ + 1u, 0);
  for (std::uint32_t p = 0; p < slots_; ++p) {
    if (!live.is_live(p)) continue;
    const std::uint32_t a = anchor_[p];
    if (a != kNone) ++child_start_[a + 1u];
  }
  for (std::uint32_t i = 1; i <= slots_; ++i) {
    child_start_[i] += child_start_[i - 1u];
  }
  child_list_.resize(child_start_[slots_]);
  std::vector<std::uint32_t> cpos(child_start_.begin(),
                                  child_start_.end() - 1);
  for (std::uint32_t p = 0; p < slots_; ++p) {
    if (!live.is_live(p)) continue;
    const std::uint32_t a = anchor_[p];
    if (a != kNone) child_list_[cpos[a]++] = p;
  }
  hops_.assign(slots_, 0);
  faulted_.assign(slots_, 0);
  fwd_stale_.assign(slots_, 0);
  contrib_span_.resize(slots_);
}

IncrementalLoadSolver::IncrementalLoadSolver(const core::LookupTree& tree,
                                             const util::StatusWord& live,
                                             const Workload& demand)
    : IncrementalLoadSolver(core::SubtreeView(tree, 0), live, demand) {}

std::uint32_t IncrementalLoadSolver::pid_at(std::uint32_t sub_vid,
                                            std::uint32_t sid) const noexcept {
  return view_.pid_at(sub_vid, sid).value();
}

std::uint32_t IncrementalLoadSolver::find_live_scan(
    std::uint32_t sid, std::uint32_t from_sv) const {
  for (std::uint32_t sv = from_sv + 1u; sv-- > 0;) {
    const std::uint32_t p = pid_at(sv, sid);
    if (live_->is_live(p)) return p;
  }
  return kNone;
}

void IncrementalLoadSolver::reset(const CopyMap& has_copy) {
  if (has_copy.size() != slots_) {
    throw std::invalid_argument(
        "IncrementalLoadSolver: copy map size does not match the ID space");
  }
  copies_ = &has_copy;
  reset_internal();
}

void IncrementalLoadSolver::reset_internal() {
  assert(copies_ != nullptr && "reset() must precede solving");
  const CopyMap& copies = *copies_;
  report_.served.assign(slots_, 0.0);
  report_.forwarded.assign(slots_, 0.0);
  hops_.assign(slots_, 0);
  faulted_.assign(slots_, 0);
  exotic_ = false;
  scalars_dirty_ = true;
  for (const std::uint32_t q : fwd_stale_list_) fwd_stale_[q] = 0;
  fwd_stale_list_.clear();
  contrib_pairs_.clear();

  // Mirror of SubtreeView::route_get over the flat tables, accumulator by
  // accumulator: requesters in ascending PID order; each visited non-
  // serving node forwards the stream.
  for (std::uint32_t pid = 0; pid < slots_; ++pid) {
    const double rate = demand_->rate[pid];
    if (rate <= 0.0) continue;
    assert(live_->is_live(pid) && "dead nodes issue no requests");
    std::uint32_t sid = sid_of_[pid];
    const std::uint32_t sv = svid_of_[pid];
    std::int32_t visits = 1;  // the requester itself
    bool served = false;
    for (std::uint32_t attempt = 0; attempt < subtree_count_; ++attempt) {
      std::uint32_t node;
      if (attempt == 0) {
        node = pid;
      } else {
        // Migration entry: the requester's counterpart in this subtree,
        // or its live proxy when the counterpart is dead.
        node = pid_at(sv, sid);
        if (!live_->is_live(node)) {
          node = find_live_scan(sid, sv);
          if (node == kNone) {
            exotic_ = true;
            sid = (sid + 1u) % subtree_count_;
            continue;  // whole subtree dead; migrate again
          }
        }
        ++visits;
      }
      // Ancestor walk within the subtree, starting at the entry node.
      while (true) {
        if (copies[node] != 0) {
          report_.served[node] += rate;
          contrib_pairs_.emplace_back(node, pid);
          served = true;
          break;
        }
        report_.forwarded[node] += rate;
        const std::uint32_t up = anchor_[node];
        if (up == kNone) break;
        node = up;
        ++visits;
      }
      if (served) break;
      // Stand-in fallback inside this subtree (dead subtree root case).
      if (root_live_[sid] == 0) {
        const std::uint32_t h = holder_[sid];
        if (h != kNone && h != node) {
          ++visits;
          if (copies[h] != 0) {
            report_.served[h] += rate;
            contrib_pairs_.emplace_back(h, pid);
            served = true;
            break;
          }
          report_.forwarded[h] += rate;
        }
      }
      // Fault in this subtree. The structured add_copy update only models
      // streams served within their own subtree, so any migration or
      // fault drops to full-reset mode.
      exotic_ = true;
      sid = (sid + 1u) % subtree_count_;
    }
    hops_[pid] = visits - 1;
    if (!served) faulted_[pid] = 1;
  }

  // Counting-sort the captured (holder, requester) pairs into the CSR
  // pool. The sort is stable and the pairs arrive in ascending requester
  // order, so each holder's span stays ascending — the oracle's order.
  for (auto& s : contrib_span_) s = ContribSpan{};
  for (const auto& [h, k] : contrib_pairs_) ++contrib_span_[h].len;
  std::uint32_t off = 0;
  for (auto& s : contrib_span_) {
    s.off = off;
    off += s.len;
    s.len = 0;
  }
  contrib_buf_.resize(off);
  for (const auto& [h, k] : contrib_pairs_) {
    contrib_buf_[contrib_span_[h].off + contrib_span_[h].len++] = k;
  }
  contrib_live_ = off;

  heap_.clear();
  for (std::uint32_t p = 0; p < slots_; ++p) {
    if (report_.served[p] > 0.0) heap_.emplace_back(report_.served[p], p);
  }
  std::make_heap(heap_.begin(), heap_.end(), &heap_less);
}

void IncrementalLoadSolver::collect_pruned(
    std::uint32_t from,
    std::vector<std::pair<std::uint32_t, std::uint32_t>>& out) const {
  // Appends (pid, anchor-chain depth below `from`) for every requester
  // whose stream reaches P(from): the anchor-forest subtree of `from`,
  // pruned at copy-holding children (their streams terminate there and
  // never reach `from`). BFS reusing `out` as the queue.
  const CopyMap& copies = *copies_;
  std::size_t head = out.size();
  out.emplace_back(from, 0u);
  while (head < out.size()) {
    const auto [n, d] = out[head++];
    for (std::uint32_t i = child_start_[n]; i < child_start_[n + 1u]; ++i) {
      const std::uint32_t c = child_list_[i];
      if (copies[c] != 0) continue;
      out.emplace_back(c, d + 1u);
    }
  }
}

void IncrementalLoadSolver::shed_captured(std::uint32_t x) {
  // The freshly captured set (scratch_a_, ascending PID) leaves P(x)'s
  // contributor list; drop it with one linear merge and re-sum the
  // remainder in the oracle's ascending-PID order for bit-identity. The
  // list covers stand-in absorption too: it records who x actually
  // serves, however their streams arrived.
  scratch_c_.clear();
  double sum = 0.0;
  auto cap = scratch_a_.cbegin();
  const ContribSpan sp = contrib_span_[x];
  for (std::uint32_t i = 0; i < sp.len; ++i) {
    const std::uint32_t k = contrib_buf_[sp.off + i];
    while (cap != scratch_a_.cend() && cap->first < k) ++cap;
    if (cap != scratch_a_.cend() && cap->first == k) continue;  // captured
    scratch_c_.push_back(k);
    sum += demand_->rate[k];
  }
  contrib_replace(x, scratch_c_.data(),
                  static_cast<std::uint32_t>(scratch_c_.size()));
  report_.served[x] = sum;
  heap_push(x);
}

void IncrementalLoadSolver::contrib_replace(std::uint32_t pid,
                                            const std::uint32_t* data,
                                            std::uint32_t n) {
  ContribSpan& sp = contrib_span_[pid];
  contrib_live_ += n;
  contrib_live_ -= sp.len;
  if (n <= sp.len) {  // sheds always shrink: reuse the span in place
    std::copy(data, data + n, contrib_buf_.begin() + sp.off);
    sp.len = n;
    return;
  }
  sp.off = static_cast<std::uint32_t>(contrib_buf_.size());
  sp.len = n;
  contrib_buf_.insert(contrib_buf_.end(), data, data + n);
  if (contrib_buf_.size() > 2 * contrib_live_ + 1024) contrib_compact();
}

void IncrementalLoadSolver::contrib_compact() {
  std::vector<std::uint32_t> fresh;
  fresh.reserve(contrib_live_);
  for (ContribSpan& sp : contrib_span_) {
    const auto off = static_cast<std::uint32_t>(fresh.size());
    fresh.insert(fresh.end(), contrib_buf_.begin() + sp.off,
                 contrib_buf_.begin() + sp.off + sp.len);
    sp.off = off;
  }
  contrib_buf_ = std::move(fresh);
}

void IncrementalLoadSolver::heap_push(std::uint32_t pid) {
  const double v = report_.served[pid];
  if (v > 0.0) {
    heap_.emplace_back(v, pid);
    std::push_heap(heap_.begin(), heap_.end(), &heap_less);
  }
}

void IncrementalLoadSolver::prune_heap() {
  // Entries whose stored value no longer matches served[] are stale
  // leftovers from before an update; pop until the top is current.
  while (!heap_.empty() &&
         heap_.front().first != report_.served[heap_.front().second]) {
    std::pop_heap(heap_.begin(), heap_.end(), &heap_less);
    heap_.pop_back();
  }
}

void IncrementalLoadSolver::add_copy(std::uint32_t pid) {
  assert(copies_ != nullptr && "reset() must precede add_copy()");
  assert((*copies_)[pid] != 0 && "caller sets has_copy[pid] before the call");
  assert(live_->is_live(pid) && "copies are placed on live nodes");
  if (exotic_) {
    // Faulting or migrating streams present: the structured update does
    // not model them, so stay exact via a full re-solve.
    reset_internal();
    return;
  }
  const CopyMap& copies = *copies_;

  // 1. Streams now captured by the new copy: everything that previously
  // forwarded through P(pid). If nothing did, the placement changes no
  // accumulator at all.
  scratch_a_.clear();
  collect_pruned(pid, scratch_a_);
  std::sort(scratch_a_.begin(), scratch_a_.end());
  double sum = 0.0;
  bool any_flow = false;
  scratch_c_.clear();
  for (const auto& [k, depth] : scratch_a_) {
    const double rate = demand_->rate[k];
    if (rate <= 0.0) continue;
    any_flow = true;
    sum += rate;
    hops_[k] = static_cast<std::int32_t>(depth);
    scratch_c_.push_back(k);
  }
  if (!any_flow) return;
  scalars_dirty_ = true;
  contrib_replace(pid, scratch_c_.data(),
                  static_cast<std::uint32_t>(scratch_c_.size()));
  report_.served[pid] = sum;
  report_.forwarded[pid] = 0.0;
  fwd_stale_[pid] = 0;  // just computed exactly; cancel any pending flush
  heap_push(pid);

  // 2. The diverted flow leaves every accumulator on pid's ancestor
  // chain: copyless ancestors lose pass-through load, and the first
  // copy-holder above loses served load. Nothing above that changes.
  // served[] feeds the max tracker, so the holder is re-summed now;
  // forwarded[] is only read through report()/loads(), so the copyless
  // ancestors are merely flagged and re-summed lazily at read time
  // (forwarded[q] depends only on the copy map in force when it is read).
  const std::uint32_t sid = sid_of_[pid];
  std::uint32_t node = pid;
  bool resolved = false;
  while (true) {
    const std::uint32_t up = anchor_[node];
    if (up == kNone) break;
    node = up;
    if (copies[node] != 0) {
      shed_captured(node);
      resolved = true;
      break;
    }
    mark_forwarded_stale(node);
  }
  if (!resolved) {
    // Chain exhausted without a holder: on the fast path the diverted
    // flow previously jumped to the stand-in holder of a dead-root
    // subtree (anything else would have faulted and flagged exotic).
    const std::uint32_t h = root_live_[sid] == 0 ? holder_[sid] : kNone;
    if (h != kNone && h != node && copies[h] != 0) {
      shed_captured(h);
    } else {
      reset_internal();  // defensive: not a modeled shape; stay exact
    }
  }
}

void IncrementalLoadSolver::mark_forwarded_stale(std::uint32_t pid) {
  if (fwd_stale_[pid] != 0) return;
  fwd_stale_[pid] = 1;
  fwd_stale_list_.push_back(pid);
}

void IncrementalLoadSolver::flush_forwarded() {
  if (fwd_stale_list_.empty()) return;
  const CopyMap& copies = *copies_;
  for (const std::uint32_t q : fwd_stale_list_) {
    if (fwd_stale_[q] == 0) continue;  // gained a copy since flagged
    fwd_stale_[q] = 0;
    if (copies[q] != 0) {
      report_.forwarded[q] = 0.0;  // holders terminate streams
      continue;
    }
    scratch_b_.clear();
    collect_pruned(q, scratch_b_);
    std::sort(scratch_b_.begin(), scratch_b_.end());
    double through = 0.0;
    for (const auto& [k, depth] : scratch_b_) {
      const double rate = demand_->rate[k];
      if (rate <= 0.0) continue;
      through += rate;
    }
    report_.forwarded[q] = through;
  }
  fwd_stale_list_.clear();
}

const LoadReport& IncrementalLoadSolver::loads() {
  flush_forwarded();
  return report_;
}

const LoadReport& IncrementalLoadSolver::report() {
  flush_forwarded();
  if (scalars_dirty_) {
    // One ascending pass, accumulator by accumulator the same sums the
    // from-scratch solver forms, so the scalars are bit-identical.
    double total = 0.0;
    double weighted = 0.0;
    double fault = 0.0;
    for (std::uint32_t pid = 0; pid < slots_; ++pid) {
      const double rate = demand_->rate[pid];
      if (rate <= 0.0) continue;
      total += rate;
      weighted += rate * static_cast<double>(hops_[pid]);
      if (faulted_[pid] != 0) fault += rate;
    }
    report_.fault_rate = fault;
    report_.mean_hops = total > 0.0 ? weighted / total : 0.0;
    prune_heap();
    if (heap_.empty()) {
      report_.max_served = 0.0;
      report_.max_served_pid = 0;
    } else {
      report_.max_served = heap_.front().first;
      report_.max_served_pid = heap_.front().second;
    }
    scalars_dirty_ = false;
  }
  return report_;
}

std::optional<std::uint32_t> IncrementalLoadSolver::most_overloaded(
    double capacity) {
  prune_heap();
  if (heap_.empty() || heap_.front().first <= capacity) return std::nullopt;
  return heap_.front().second;
}

}  // namespace lesslog::sim
