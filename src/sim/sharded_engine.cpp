#include "lesslog/sim/sharded_engine.hpp"

#include <limits>
#include <stdexcept>

#include "lesslog/util/rng.hpp"

namespace lesslog::sim {

std::uint64_t ShardedEngine::shard_seed(std::uint64_t seed, std::size_t s,
                                        std::size_t shards) noexcept {
  if (shards == 1) return seed;
  // One SplitMix64 step over (seed, shard index): streams are
  // independent across shards and stable across runs and S values.
  std::uint64_t state =
      seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(s) + 1));
  return util::splitmix64(state);
}

ShardedEngine::ShardedEngine(std::size_t shards, std::uint64_t seed,
                             double lookahead)
    : lookahead_(lookahead) {
  if (shards == 0) {
    throw std::invalid_argument("ShardedEngine: shards must be >= 1");
  }
  if (shards > 1 && !(lookahead > 0.0)) {
    throw std::invalid_argument(
        "ShardedEngine: a positive lookahead (minimum cross-shard link "
        "latency) is required for more than one shard");
  }
  engines_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    engines_.push_back(
        std::make_unique<Engine>(shard_seed(seed, s, shards)));
  }
  if (shards > 1) {
    pool_ = std::make_unique<util::ThreadPool>(
        static_cast<unsigned>(shards));
  }
}

std::int64_t ShardedEngine::run_all_windows() {
  const std::size_t n = engines_.size();
  if (n == 1) {
    // Serial degenerate case: no windows, no barriers — the exact
    // pre-sharding run_all() path (and its exact event order).
    if (drain_) drain_(0);
    return engines_[0]->queue().run_all();
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::int64_t> executed(n, 0);
  for (;;) {
    // Barrier phase 1 — merge: each shard adopts its mailboxed messages.
    // Runs on the pool too (a drain is per-shard work); the pool's
    // wait_idle() barrier orders it against both the previous window's
    // sends and the next window's execution.
    if (drain_) {
      util::parallel_for(*pool_, n, [&](std::size_t s) { drain_(s); });
    }
    // Global minimum next-event time across shards. After the drain,
    // every pending message is in some queue, so an empty minimum means
    // full quiescence.
    double t = kInf;
    for (std::size_t s = 0; s < n; ++s) {
      const EventQueue& q = engines_[s]->queue();
      if (!q.empty()) t = std::min(t, q.next_time());
    }
    if (t == kInf) break;
    // Barrier phase 2 — window: every event in [t, t + lookahead) is
    // safe; run_before leaves each shard's clock on the window edge.
    const double bound = t + lookahead_;
    util::parallel_for(*pool_, n, [&](std::size_t s) {
      executed[s] += engines_[s]->run_before(bound);
    });
  }
  std::int64_t total = 0;
  for (const std::int64_t e : executed) total += e;
  return total;
}

}  // namespace lesslog::sim
