#include "lesslog/sim/sharded_engine.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "lesslog/util/rng.hpp"

namespace lesslog::sim {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

std::uint64_t ShardedEngine::shard_seed(std::uint64_t seed, std::size_t s,
                                        std::size_t shards) noexcept {
  if (shards == 1) return seed;
  // One SplitMix64 step over (seed, shard index): streams are
  // independent across shards and stable across runs and S values.
  std::uint64_t state =
      seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(s) + 1));
  return util::splitmix64(state);
}

ShardedEngine::ShardedEngine(std::size_t shards, std::uint64_t seed,
                             double lookahead)
    : lookahead_(lookahead) {
  if (shards == 0) {
    throw std::invalid_argument("ShardedEngine: shards must be >= 1");
  }
  if (shards > 1 && !(lookahead > 0.0)) {
    throw std::invalid_argument(
        "ShardedEngine: running more than one shard requires a strictly "
        "positive cross-shard latency lower bound for every shard pair "
        "(the conservative lookahead); this configuration's pairwise "
        "floor is zero, so no parallel window can be scheduled");
  }
  pair_.assign(shards * shards, lookahead);
  rowmin_.assign(shards, lookahead);
  engines_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    engines_.push_back(
        std::make_unique<Engine>(shard_seed(seed, s, shards)));
  }
  if (shards > 1) {
    pool_ = std::make_unique<util::ThreadPool>(
        static_cast<unsigned>(shards));
  }
}

void ShardedEngine::set_pair_lookahead(const std::vector<double>& matrix) {
  const std::size_t n = engines_.size();
  if (matrix.size() != n * n) {
    throw std::invalid_argument(
        "ShardedEngine: pair-lookahead matrix must be S x S");
  }
  double floor = kInf;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      const double l = matrix[i * n + j];
      if (n > 1 && !(l > 0.0)) {
        throw std::invalid_argument(
            "ShardedEngine: every off-diagonal pair lookahead must be "
            "strictly positive (adaptive conservative window)");
      }
      floor = std::min(floor, l);
    }
  }
  pair_ = matrix;
  for (std::size_t i = 0; i < n; ++i) {
    double row = kInf;
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) row = std::min(row, pair_[i * n + j]);
    }
    rowmin_[i] = row;
  }
  if (n > 1) lookahead_ = floor;
}

double ShardedEngine::window_bound() const noexcept {
  // B = min over populated shards i of T_i + rowmin_i. An idle shard
  // (empty queue) executes nothing in the window, hence sends nothing,
  // so it never constrains the bound. With a uniform matrix this is
  // exactly the legacy T_global + L.
  double bound = kInf;
  for (std::size_t s = 0; s < engines_.size(); ++s) {
    const EventQueue& q = engines_[s]->queue();
    if (!q.empty()) bound = std::min(bound, q.next_time() + rowmin_[s]);
  }
  return bound;
}

std::int64_t ShardedEngine::run_all_windows() {
  const std::size_t n = engines_.size();
  if (n == 1) {
    // Serial degenerate case: no windows, no barriers — the exact
    // pre-sharding run_all() path (and its exact event order).
    if (drain_) drain_(0);
    return engines_[0]->queue().run_all();
  }
  std::vector<std::int64_t> executed(n, 0);
  for (;;) {
    // Barrier phase 1 — merge: each shard adopts its mailboxed messages.
    // Runs on the pool too (a drain is per-shard work); the pool's
    // wait_idle() barrier orders it against both the previous window's
    // sends and the next window's execution.
    if (drain_) {
      util::parallel_for(*pool_, n, [&](std::size_t s) { drain_(s); });
    }
    // After the drain every pending message is in some queue, so an
    // infinite bound means full quiescence.
    const double bound = window_bound();
    if (bound == kInf) break;
    // Barrier phase 2 — window: every event strictly before the bound is
    // safe; run_before leaves each shard's clock on the window edge.
    util::parallel_for(*pool_, n, [&](std::size_t s) {
      executed[s] += engines_[s]->run_before(bound);
    });
  }
  // Quiescent: park every clock on the fleet-wide last-fired time. The
  // loop leaves each clock on its final window edge, which depends on
  // the window sequence (and hence on S); the quiesce time depends only
  // on the executed events — and it is exactly where the serial
  // degenerate case's run_all() leaves the one clock, so settle-then-
  // read-clock behaves identically at any shard count.
  const double q = quiesce_time();
  for (auto& e : engines_) e->queue().reset_clock(q);
  std::int64_t total = 0;
  for (const std::int64_t e : executed) total += e;
  return total;
}

std::int64_t ShardedEngine::run_until_windows(double t) {
  const std::size_t n = engines_.size();
  if (n == 1) {
    if (drain_) drain_(0);
    return engines_[0]->run_before(t);
  }
  std::vector<std::int64_t> executed(n, 0);
  for (;;) {
    if (drain_) {
      util::parallel_for(*pool_, n, [&](std::size_t s) { drain_(s); });
    }
    const double bound = std::min(window_bound(), t);
    // Nothing left before t (mailboxes drained above, so this is
    // global): align every clock at exactly t and stop. run_before(t)
    // executes nothing here — it only advances idle clocks.
    bool pending_before_t = false;
    for (std::size_t s = 0; s < n; ++s) {
      const EventQueue& q = engines_[s]->queue();
      if (!q.empty() && q.next_time() < t) pending_before_t = true;
    }
    if (!pending_before_t) {
      for (std::size_t s = 0; s < n; ++s) engines_[s]->run_before(t);
      break;
    }
    util::parallel_for(*pool_, n, [&](std::size_t s) {
      executed[s] += engines_[s]->run_before(bound);
    });
  }
  std::int64_t total = 0;
  for (const std::int64_t e : executed) total += e;
  return total;
}

}  // namespace lesslog::sim
