#include "lesslog/sim/churn.hpp"

#include <cassert>

#include "lesslog/sim/engine.hpp"

namespace lesslog::sim {

ChurnResult run_churn(const ChurnConfig& cfg) {
  assert(cfg.initial_nodes >= cfg.min_nodes && cfg.min_nodes >= 1);
  assert(cfg.initial_nodes <= util::space_size(cfg.m));

  core::System sys({.m = cfg.m, .b = cfg.b, .seed = cfg.seed});
  sys.bootstrap(cfg.initial_nodes);

  std::vector<core::FileId> files;
  files.reserve(cfg.files);
  for (std::uint32_t i = 0; i < cfg.files; ++i) {
    files.push_back(sys.insert_key(0xC0FFEE00ULL + i));
  }

  Engine engine(cfg.seed ^ 0xD15EA5EULL);
  ChurnResult result;
  std::int64_t hop_sum = 0;

  const auto random_live = [&]() -> core::Pid {
    // Rejection sample a live PID; live population is kept >= min_nodes.
    for (;;) {
      const auto p = static_cast<std::uint32_t>(
          engine.rng().bounded(util::space_size(cfg.m)));
      if (sys.is_live(core::Pid{p})) return core::Pid{p};
    }
  };

  engine.poisson_process(cfg.request_rate, cfg.duration, [&] {
    const core::FileId f =
        files[engine.rng().bounded(files.size())];
    const core::Pid at = random_live();
    const core::System::GetOutcome got = sys.get(f, at);
    ++result.requests;
    hop_sum += got.route.hops();
    if (!got.ok()) ++result.faults;
  });

  engine.poisson_process(cfg.join_rate, cfg.duration, [&] {
    if (sys.live_count() >= sys.status().capacity()) return;
    sys.join();
    ++result.joins;
  });

  engine.poisson_process(cfg.leave_rate, cfg.duration, [&] {
    if (sys.live_count() <= cfg.min_nodes) return;
    sys.leave(random_live());
    ++result.leaves;
  });

  engine.poisson_process(cfg.fail_rate, cfg.duration, [&] {
    if (sys.live_count() <= cfg.min_nodes) return;
    sys.fail(random_live());
    ++result.fails;
  });

  engine.run_until(cfg.duration);

  result.lookup_messages = sys.lookup_messages();
  result.maintenance_messages = sys.maintenance_messages();
  result.final_nodes = sys.live_count();
  result.files_lost = sys.lost_files().size();
  result.mean_hops =
      result.requests > 0
          ? static_cast<double>(hop_sum) / static_cast<double>(result.requests)
          : 0.0;
  return result;
}

}  // namespace lesslog::sim
