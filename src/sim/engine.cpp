#include "lesslog/sim/engine.hpp"

namespace lesslog::sim {

void Engine::poisson_process(double rate, SimTime stop_at,
                             std::function<void()> fn) {
  if (rate <= 0.0) return;
  auto shared = std::make_shared<std::function<void()>>(std::move(fn));
  schedule_next_arrival(rate, stop_at, std::move(shared));
}

void Engine::schedule_next_arrival(
    double rate, SimTime stop_at,
    std::shared_ptr<std::function<void()>> fn) {
  const SimTime next = queue_.now() + rng_.exponential(rate);
  if (next > stop_at) return;
  queue_.schedule(next, [this, rate, stop_at, fn] {
    (*fn)();
    schedule_next_arrival(rate, stop_at, fn);
  });
}

}  // namespace lesslog::sim
