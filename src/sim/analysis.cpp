#include "lesslog/sim/analysis.hpp"

#include <algorithm>
#include <unordered_map>

#include "lesslog/core/routing.hpp"
#include "lesslog/util/stats.hpp"

namespace lesslog::sim {

PlacementAnalysis analyze_placement(const core::LookupTree& tree,
                                    const CopyMap& has_copy,
                                    const util::StatusWord& live) {
  PlacementAnalysis out;
  const core::HasCopyFn copy_fn = [&has_copy](core::Pid p) {
    return has_copy[p.value()] != 0;
  };

  std::unordered_map<std::uint32_t, std::uint32_t> catchment;
  std::int64_t hop_total = 0;
  std::int64_t served = 0;
  for (std::uint32_t k = 0; k < live.capacity(); ++k) {
    if (!live.is_live(k)) continue;
    const core::RouteResult r =
        core::route_get(tree, core::Pid{k}, live, copy_fn);
    if (!r.served_by.has_value()) {
      ++out.uncovered;
      continue;
    }
    ++catchment[r.served_by->value()];
    hop_total += r.hops();
    ++served;
  }

  std::vector<double> sizes;
  for (std::uint32_t p = 0; p < live.capacity(); ++p) {
    if (has_copy[p] == 0 || !live.is_live(p)) continue;
    ++out.copies;
    const std::uint32_t size = catchment.contains(p) ? catchment[p] : 0;
    out.catchments.emplace_back(p, size);
    sizes.push_back(static_cast<double>(size));
    const int depth = tree.depth(core::Pid{p});
    out.mean_copy_depth += depth;
    out.max_copy_depth = std::max(out.max_copy_depth, depth);
  }
  if (out.copies > 0) {
    out.mean_copy_depth /= static_cast<double>(out.copies);
  }
  out.catchment_gini = util::gini(sizes);
  if (!sizes.empty() && live.live_count() > 0) {
    out.max_catchment_fraction =
        *std::max_element(sizes.begin(), sizes.end()) /
        static_cast<double>(live.live_count());
  }
  out.mean_hops =
      served > 0 ? static_cast<double>(hop_total) / static_cast<double>(served)
                 : 0.0;
  return out;
}

}  // namespace lesslog::sim
