#include "lesslog/sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace lesslog::sim {

namespace {
constexpr std::size_t kArity = 4;
constexpr std::size_t kInitialLaneCapacity = 16;
}  // namespace

void EventQueue::Lane::push_back(Entry e) {
  if (count == ring.size()) {
    // Grow by relinearizing into a fresh power-of-two ring.
    std::vector<Entry> grown;
    grown.reserve(ring.empty() ? kInitialLaneCapacity : ring.size() * 2);
    for (std::size_t i = 0; i < count; ++i) {
      grown.push_back(ring[(head + i) & (ring.size() - 1)]);
    }
    grown.resize(grown.capacity());
    ring.swap(grown);
    head = 0;
  }
  ring[(head + count) & (ring.size() - 1)] = e;
  ++count;
}

void EventQueue::renumber() {
  // next_seq_ wrapped (one full 2^32-schedule epoch). Queued entries keep
  // their relative (at, seq) order; compacting their seqs to 0..n-1 frees
  // the space above for the next epoch. Lane and wheel entries are folded
  // into the heap (an entry is valid wherever its key sorts), and an
  // ascending sort is trivially a valid min-heap, so the heap is rebuilt
  // by construction.
  for (Lane& lane : lanes_) {
    while (lane.count > 0) heap_.push_back(lane.pop_front());
  }
  lane_count_ = 0;
  for (Bucket& b : wheel_) {
    for (std::size_t i = b.head; i < b.v.size(); ++i) heap_.push_back(b.v[i]);
    b.v.clear();
    b.head = 0;
    b.sorted = false;
  }
  wheel_count_ = 0;
  wheel_front_hint_ = nullptr;
  std::sort(heap_.begin(), heap_.end(),
            [](const Entry& a, const Entry& b) { return earlier(a, b); });
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    heap_[i] = make_entry(heap_[i].at(), static_cast<std::uint32_t>(i),
                          heap_[i].slot());
  }
  next_seq_ = static_cast<std::uint32_t>(heap_.size());
}

void EventQueue::schedule(SimTime at, EventFn fn) {
  assert(fn && "cannot schedule an empty event");
  const std::uint32_t slot = acquire_slot();
  slot_ref(slot) = std::move(fn);
  push_entry(at, slot);
}

void EventQueue::push_entry(SimTime at, std::uint32_t slot) {
  assert(at >= now_ && "cannot schedule into the past");
  if (next_seq_ == std::numeric_limits<std::uint32_t>::max()) renumber();
  const Entry e = make_entry(at, next_seq_++, slot);
  const SimTime delay = at - now_;
  if (delay >= kWheelMinDelay && delay < kWheelMaxDelay) {
    // Near-future fast path (every wire delivery): push into the wheel
    // bucket of `at`. An already-sorted bucket is the drain front being
    // consumed; keep it sorted with an ordered insert (`e` is newer than
    // every popped entry, so the position is never below head).
    Bucket& b = wheel_[bucket_of(at) & (kNumBuckets - 1)];
    wheel_front_hint_ = nullptr;  // the insert may create an earlier front
    if (!b.sorted) {
      b.v.push_back(e);
    } else {
      auto pos = std::upper_bound(
          b.v.begin() + static_cast<std::ptrdiff_t>(b.head), b.v.end(), e,
          [](const Entry& a, const Entry& x) { return earlier(a, x); });
      b.v.insert(pos, e);
    }
    ++wheel_count_;
    return;
  }
  push_heap_entry(e);
}

void EventQueue::push_heap_entry(Entry e) {
  heap_.push_back(e);
  std::size_t hole = heap_.size() - 1;
  // Steady-state fast path: most new events land after their parent (the
  // heap is keyed by future times), so test once before paying the
  // hole-shuffle copies.
  if (hole == 0 || !earlier(e, heap_[(hole - 1) / kArity])) {
    return;
  }
  do {
    const std::size_t parent = (hole - 1) / kArity;
    heap_[hole] = heap_[parent];
    hole = parent;
  } while (hole != 0 && earlier(e, heap_[(hole - 1) / kArity]));
  heap_[hole] = e;
}

void EventQueue::schedule_after_fixed(SimTime delay, EventFn fn) {
  assert(fn && "cannot schedule an empty event");
  const std::uint32_t slot = acquire_slot();
  slot_ref(slot) = std::move(fn);
  push_lane_entry(delay, slot);
}

void EventQueue::push_lane_entry(SimTime delay, std::uint32_t slot) {
  assert(delay >= 0.0 && "cannot schedule into the past");
  Lane* lane = nullptr;
  for (Lane& candidate : lanes_) {
    if (candidate.delay == delay) {
      lane = &candidate;
      break;
    }
  }
  if (lane == nullptr) {
    if (lanes_.size() >= kMaxLanes) {
      // Lane table full: this delay is not one of the protocol constants
      // the lanes exist for. Admit through the general wheel/heap path —
      // same (time, seq) key, so the pop order is indistinguishable; only
      // the O(1) lane bypass is lost for this entry.
      push_entry(now_ + delay, slot);
      return;
    }
    lanes_.push_back(Lane{delay, {}, 0, 0});
    lane = &lanes_.back();
  }
  // renumber() after the lane lookup: it drains entries in place without
  // reshaping lanes_, so `lane` stays valid across the fold.
  if (next_seq_ == std::numeric_limits<std::uint32_t>::max()) renumber();
  const Entry e = make_entry(now_ + delay, next_seq_++, slot);
  // The FIFO invariant that makes the lane a valid priority queue: keys
  // enter in strictly increasing order (now() is monotone, x + delay is
  // monotone in x, and seq always grows).
  assert(lane->count == 0 || earlier(lane->back(), e));
  lane->push_back(e);
  ++lane_count_;
}

EventQueue::Bucket& EventQueue::wheel_front() const noexcept {
  // Live wheel entries all have times in [now, now + span), i.e. bucket
  // numbers in [bucket_of(now), bucket_of(now) + kNumBuckets - 1], so
  // the scan finds a nonempty bucket within one revolution. A bucket is
  // sorted exactly when it first becomes this front; from then until it
  // drains, only the ordered-insert path in schedule() can add to it.
  if (wheel_front_hint_ != nullptr) return *wheel_front_hint_;
  std::uint64_t b = bucket_of(now_);
  for (;;) {
    Bucket& bucket = wheel_[b & (kNumBuckets - 1)];
    if (bucket.head < bucket.v.size()) {
      if (!bucket.sorted) {
        std::sort(bucket.v.begin(), bucket.v.end(),
                  [](const Entry& a, const Entry& x) { return earlier(a, x); });
        bucket.sorted = true;
      }
      wheel_front_hint_ = &bucket;
      return bucket;
    }
    ++b;
  }
}

int EventQueue::min_source() const noexcept {
  const Entry* best = heap_.empty() ? nullptr : &heap_.front();
  int source = kHeap;
  if (wheel_count_ > 0) {
    const Bucket& front = wheel_front();
    if (best == nullptr || earlier(front.v[front.head], *best)) {
      best = &front.v[front.head];
      source = kWheel;
    }
  }
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    const Lane& lane = lanes_[i];
    if (lane.count == 0) continue;
    if (best == nullptr || earlier(lane.front(), *best)) {
      best = &lane.front();
      source = static_cast<int>(i);
    }
  }
  return source;
}

EventQueue::Entry EventQueue::pop_source(int source) noexcept {
  if (source == kHeap) return pop_heap_root();
  if (source == kWheel) {
    Bucket& front = wheel_front();  // hint hit: set by the min scan
    const Entry e = front.v[front.head++];
    if (front.head == front.v.size()) {
      // Drained: reset and drop the hint. While entries remain, this
      // bucket is still the first nonempty one, so the hint stays.
      front.v.clear();
      front.head = 0;
      front.sorted = false;
      wheel_front_hint_ = nullptr;
    }
    --wheel_count_;
    return e;
  }
  --lane_count_;
  return lanes_[static_cast<std::size_t>(source)].pop_front();
}

SimTime EventQueue::next_time() const {
  assert(!empty());
  const int source = min_source();
  if (source == kHeap) return heap_.front().at();
  if (source == kWheel) {
    const Bucket& front = wheel_front();
    return front.v[front.head].at();
  }
  return lanes_[static_cast<std::size_t>(source)].front().at();
}

EventQueue::Entry EventQueue::pop_heap_root() noexcept {
  const Entry top = heap_.front();
  const std::size_t n = heap_.size() - 1;
  if (n > 0) {
    const Entry last = heap_.back();
    heap_.pop_back();
    // Bottom-up sift: walk the min-child path all the way to a leaf
    // without testing `last` (a random recent key almost always belongs
    // near the bottom, so that per-level test is both mispredicted and
    // usually true), then sift `last` up the short remaining distance.
    std::size_t hole = 0;
    for (;;) {
      const std::size_t first = kArity * hole + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t end = std::min(first + kArity, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      heap_[hole] = heap_[best];
      hole = best;
    }
    while (hole != 0 && earlier(last, heap_[(hole - 1) / kArity])) {
      const std::size_t parent = (hole - 1) / kArity;
      heap_[hole] = heap_[parent];
      hole = parent;
    }
    heap_[hole] = last;
  } else {
    heap_.pop_back();
  }
  return top;
}

void EventQueue::step() {
  assert(!empty());
  // The earliest entry across the wheel, the heap and every lane is
  // popped and its source repaired before the handler runs. Guarantee: a
  // handler may call schedule()/schedule_after_fixed() freely during its
  // own execution — it only ever observes consistent containers, they may
  // reallocate with no live references into them, and the handler itself
  // sits at a chunk-stable arena address (its slot is not recycled until
  // after it returns).
  const Entry top = pop_source(min_source());
  now_ = top.at();
  last_fired_ = now_;
  EventFn& fn = slot_ref(top.slot());
  fn();
  fn = EventFn{};  // destroy the handler; the storage stays in the arena
  free_slots_.push_back(top.slot());
}

std::int64_t EventQueue::run_until(SimTime until) {
  std::int64_t executed = 0;
  // One min scan per event (not one for the bound check plus one inside
  // step()): find the earliest source, test it against the bound, pop.
  while (!empty()) {
    const int source = min_source();
    SimTime at;
    if (source == kHeap) {
      at = heap_.front().at();
    } else if (source == kWheel) {
      const Bucket& front = wheel_front();
      at = front.v[front.head].at();
    } else {
      at = lanes_[static_cast<std::size_t>(source)].front().at();
    }
    if (at > until) break;
    const Entry top = pop_source(source);
    now_ = at;
    last_fired_ = at;
    EventFn& fn = slot_ref(top.slot());
    fn();
    fn = EventFn{};
    free_slots_.push_back(top.slot());
    ++executed;
  }
  now_ = std::max(now_, until);
  return executed;
}

std::int64_t EventQueue::run_before(SimTime bound) {
  std::int64_t executed = 0;
  while (!empty()) {
    const int source = min_source();
    SimTime at;
    if (source == kHeap) {
      at = heap_.front().at();
    } else if (source == kWheel) {
      const Bucket& front = wheel_front();
      at = front.v[front.head].at();
    } else {
      at = lanes_[static_cast<std::size_t>(source)].front().at();
    }
    if (at >= bound) break;
    const Entry top = pop_source(source);
    now_ = at;
    last_fired_ = at;
    EventFn& fn = slot_ref(top.slot());
    fn();
    fn = EventFn{};
    free_slots_.push_back(top.slot());
    ++executed;
  }
  now_ = std::max(now_, bound);
  return executed;
}

std::int64_t EventQueue::run_all() {
  std::int64_t executed = 0;
  while (!empty()) {
    const Entry top = pop_source(min_source());
    now_ = top.at();
    last_fired_ = now_;
    EventFn& fn = slot_ref(top.slot());
    fn();
    fn = EventFn{};
    free_slots_.push_back(top.slot());
    ++executed;
  }
  return executed;
}

}  // namespace lesslog::sim
