#include "lesslog/sim/event_queue.hpp"

#include <algorithm>
#include <cassert>

namespace lesslog::sim {

void EventQueue::schedule(SimTime at, EventFn fn) {
  assert(at >= now_ && "cannot schedule into the past");
  heap_.push(Entry{at, next_seq_++, std::move(fn)});
}

SimTime EventQueue::next_time() const {
  assert(!heap_.empty());
  return heap_.top().at;
}

void EventQueue::step() {
  assert(!heap_.empty());
  // priority_queue::top() is const; the entry is copied out before pop so
  // the handler may schedule new events freely.
  Entry e = heap_.top();
  heap_.pop();
  now_ = e.at;
  e.fn();
}

std::int64_t EventQueue::run_until(SimTime until) {
  std::int64_t executed = 0;
  while (!heap_.empty() && heap_.top().at <= until) {
    step();
    ++executed;
  }
  now_ = std::max(now_, until);
  return executed;
}

}  // namespace lesslog::sim
