#include "lesslog/sim/experiment.hpp"

#include <cassert>
#include <cmath>

#include "lesslog/util/stats.hpp"

namespace lesslog::sim {

namespace {

// Owns everything one experiment cell needs. The SubtreeView holds a
// pointer to the tree, so Setup is neither copyable nor movable — run
// functions build it in place and keep it on their own stack.
struct Setup {
  Setup(const ExperimentConfig& cfg, util::Rng& rng)
      : live(cfg.m),
        tree(cfg.m, pick_target(cfg, rng)),
        view(tree, cfg.b),
        has_copy(util::space_size(cfg.m), 0),
        copy_bits(util::space_size(cfg.m)) {
    const std::uint32_t slots = util::space_size(cfg.m);
    for (std::uint32_t p = 0; p < slots; ++p) live.set_live(p);
    const auto dead_count = static_cast<std::uint32_t>(
        std::lround(cfg.dead_fraction * static_cast<double>(slots)));
    for (std::uint32_t dead : rng.sample_indices(slots, dead_count)) {
      live.set_dead(dead);
    }
    for (core::Pid holder : view.insertion_targets(live)) {
      has_copy[holder.value()] = 1;
      copy_bits.set(holder.value());
      ++initial_copies;
    }
    demand = cfg.workload == WorkloadKind::kUniform
                 ? uniform_workload(util::BorrowedView(live), cfg.total_rate)
                 : locality_workload(util::BorrowedView(live), cfg.total_rate, rng,
                                     cfg.hot_node_fraction,
                                     cfg.hot_request_fraction);
  }

  Setup(const Setup&) = delete;
  Setup& operator=(const Setup&) = delete;

  // ψ(f) falls uniformly on the ID space; the target may be dead (exactly
  // the advanced-model stand-in scenario of Section 3). Drawing the target
  // before the dead set keeps the rng stream layout simple.
  static core::Pid pick_target(const ExperimentConfig& cfg, util::Rng& rng) {
    assert(cfg.dead_fraction >= 0.0 && cfg.dead_fraction < 1.0);
    return core::Pid{
        static_cast<std::uint32_t>(rng.bounded(util::space_size(cfg.m)))};
  }

  /// Marks a placement in both copy-map representations.
  void place_copy(std::uint32_t p) {
    has_copy[p] = 1;
    copy_bits.set(p);
  }

  util::StatusWord live;
  core::LookupTree tree;
  core::SubtreeView view;
  CopyMap has_copy;
  CopyBits copy_bits;  ///< packed mirror of has_copy
  Workload demand;
  int initial_copies = 0;
};

LoadReport solve(const Setup& s, const ExperimentConfig& cfg) {
  // The two solver entry points are equivalent at b = 0; routing through
  // the plain tree keeps the common case on the paper's basic algorithm.
  return cfg.b == 0 ? solve_load(s.tree, s.has_copy, s.live, s.demand)
                    : solve_load(s.view, s.has_copy, s.live, s.demand);
}

ExperimentResult finish(const Setup& s, const LoadReport& report,
                        int replicas, bool balanced, double capacity) {
  ExperimentResult out;
  out.replicas_created = replicas;
  out.balanced = balanced;
  if (!balanced) {
    // Unbalanced runs are "irreducible" when every overloaded node already
    // holds a copy and is overloaded by its own client demand alone.
    out.irreducible_overload = true;
    for (const std::uint32_t p : report.overloaded(capacity)) {
      if (s.has_copy[p] == 0 || s.demand.rate[p] <= capacity) {
        out.irreducible_overload = false;
        break;
      }
    }
  }
  out.final_max_load = report.max_served;
  out.mean_hops = report.mean_hops;
  out.fault_rate = report.fault_rate;
  out.live_nodes = s.live.live_count();
  std::vector<double> live_loads;
  live_loads.reserve(out.live_nodes);
  for (std::uint32_t p = 0; p < s.live.capacity(); ++p) {
    if (s.live.is_live(p)) live_loads.push_back(report.served[p]);
  }
  out.fairness = util::jain_fairness(live_loads);
  return out;
}

// Validates a policy's proposal; invalid or absent placements end the run
// unbalanced (the system cannot improve by further replication).
bool usable_placement(const Setup& s,
                      const std::optional<core::Pid>& placement) {
  return placement.has_value() && s.has_copy[placement->value()] == 0 &&
         s.live.is_live(placement->value());
}

// The oracle balance loop: a full from-scratch solve per iteration.
ExperimentResult run_on_scratch(Setup& s, const ExperimentConfig& cfg,
                                const PlacementFn& policy, util::Rng& rng) {
  int replicas = 0;
  while (true) {
    const LoadReport report = solve(s, cfg);
    const std::optional<std::uint32_t> hot =
        report.most_overloaded(cfg.capacity);
    if (!hot.has_value()) {
      return finish(s, report, replicas, /*balanced=*/true, cfg.capacity);
    }
    if (replicas >= cfg.max_replicas) {
      return finish(s, report, replicas, /*balanced=*/false, cfg.capacity);
    }

    const PlacementContext ctx{
        s.tree,     s.view,
        core::Pid{*hot},
        s.live,     s.has_copy,
        [&report]() -> const LoadReport& { return report; },
        s.demand,   rng,
        &s.copy_bits};
    const std::optional<core::Pid> placement = policy(ctx);
    if (!usable_placement(s, placement)) {
      return finish(s, report, replicas, /*balanced=*/false, cfg.capacity);
    }
    s.place_copy(placement->value());
    ++replicas;
  }
}

// The fast balance loop: one solve at entry, then each replica placement
// updates only the accumulators it actually changes, and the overload
// check reads an incrementally maintained max tracker instead of sorting
// the full served vector. Bit-identical to run_on_scratch.
ExperimentResult run_on_incremental(Setup& s, const ExperimentConfig& cfg,
                                    const PlacementFn& policy,
                                    util::Rng& rng) {
  // At b = 0 the view routes exactly as the plain tree (asserted by
  // tests), so the view-based solver covers both cases.
  IncrementalLoadSolver solver(s.view, s.live, s.demand);
  solver.reset(s.has_copy);
  int replicas = 0;
  while (true) {
    const std::optional<std::uint32_t> hot =
        solver.most_overloaded(cfg.capacity);
    if (!hot.has_value()) {
      return finish(s, solver.report(), replicas, /*balanced=*/true,
                    cfg.capacity);
    }
    if (replicas >= cfg.max_replicas) {
      return finish(s, solver.report(), replicas, /*balanced=*/false,
                    cfg.capacity);
    }

    // loads() flushes deferred forward-rate sums but skips report()'s
    // O(n) scalar pass; it only runs if the policy actually reads flows.
    const PlacementContext ctx{
        s.tree,     s.view,
        core::Pid{*hot},
        s.live,     s.has_copy,
        [&solver]() -> const LoadReport& { return solver.loads(); },
        s.demand,   rng,
        &s.copy_bits};
    const std::optional<core::Pid> placement = policy(ctx);
    if (!usable_placement(s, placement)) {
      return finish(s, solver.report(), replicas, /*balanced=*/false,
                    cfg.capacity);
    }
    s.place_copy(placement->value());
    solver.add_copy(placement->value());
    ++replicas;
  }
}

// One replicate-until-balanced run against an existing setup. Exposed so
// the removal pass can replay the loop on its own Setup instance.
ExperimentResult run_on(Setup& s, const ExperimentConfig& cfg,
                        const PlacementFn& policy, util::Rng& rng) {
  if (s.initial_copies == 0) {
    // No live node can hold the file; report the degenerate cell honestly.
    return finish(s, solve(s, cfg), 0, /*balanced=*/false, cfg.capacity);
  }
  return cfg.solver == SolverMode::kScratch
             ? run_on_scratch(s, cfg, policy, rng)
             : run_on_incremental(s, cfg, policy, rng);
}

}  // namespace

ExperimentResult run_replication_experiment(const ExperimentConfig& cfg,
                                            const PlacementFn& policy) {
  util::Rng rng(cfg.seed);
  Setup s(cfg, rng);
  return run_on(s, cfg, policy, rng);
}

RemovalResult run_with_removal(const ExperimentConfig& cfg,
                               const PlacementFn& policy,
                               double removal_threshold) {
  util::Rng rng(cfg.seed);
  Setup s(cfg, rng);
  RemovalResult out;
  out.before = run_on(s, cfg, policy, rng);

  // Counter-based removal: replicas serving below the threshold are
  // dropped (original inserted copies are never removed).
  CopyMap inserted(s.has_copy.size(), 0);
  for (core::Pid holder : s.view.insertion_targets(s.live)) {
    inserted[holder.value()] = 1;
  }
  // Bulk removal invalidates incremental state wholesale, so both modes
  // re-solve; the incremental solver's reset() is the flat-table walk.
  std::optional<IncrementalLoadSolver> solver;
  if (cfg.solver != SolverMode::kScratch) {
    solver.emplace(s.view, s.live, s.demand);
  }
  const auto resolve = [&]() -> LoadReport {
    if (!solver.has_value()) return solve(s, cfg);
    solver->reset(s.has_copy);
    return solver->report();
  };
  const LoadReport final_report = resolve();
  int survivors = 0;
  for (std::uint32_t p = 0; p < s.has_copy.size(); ++p) {
    if (s.has_copy[p] == 0 || inserted[p] != 0) continue;
    if (final_report.served[p] < removal_threshold) {
      s.has_copy[p] = 0;
      s.copy_bits.clear(p);
    } else {
      ++survivors;
    }
  }
  out.replicas_after_removal = survivors;
  out.still_balanced = !resolve().most_overloaded(cfg.capacity).has_value();
  return out;
}

}  // namespace lesslog::sim
