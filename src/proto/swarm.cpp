#include "lesslog/proto/swarm.hpp"

#include <algorithm>
#include <cassert>

#include "lesslog/core/replication.hpp"

namespace lesslog::proto {

Swarm::Swarm(Config cfg)
    : cfg_(cfg),
      engine_(cfg.seed),
      network_(engine_, cfg.net),
      status_(util::StatusWord(cfg.m)),
      metrics_(registry_),
      metrics_sink_(metrics_) {
  assert(cfg_.nodes <= util::space_size(cfg_.m));
#if LESSLOG_METRICS_ENABLED
  network_.set_metrics(&metrics_);
  network_.add_sink(metrics_sink_);
#endif
  for (std::uint32_t p = 0; p < cfg_.nodes; ++p) {
    status_.mutate().set_live(p);  // sole owner here: never clones
  }
  peers_.resize(util::space_size(cfg_.m));
  clients_.resize(util::space_size(cfg_.m));
  // All peers start from the same view, so hand every one of them an O(1)
  // snapshot of the truth instead of 2^m distinct 2^m-bit words; the first
  // truth mutation (or a peer's view diverging) copies-on-write once.
  for (std::uint32_t p = 0; p < cfg_.nodes; ++p) {
    peers_[p] = std::make_unique<Peer>(core::Pid{p}, cfg_.b,
                                       status_.snapshot(), network_,
                                       cfg_.peer);
    peers_[p]->set_metrics(&metrics_);
    peers_[p]->attach();
    clients_[p] =
        std::make_unique<Client>(*peers_[p], network_, cfg_.client);
    clients_[p]->set_metrics(&metrics_);
  }
}

void Swarm::settle() { engine_.queue().run_all(); }

void Swarm::insert(core::FileId file, core::Pid r, core::Pid issuer) {
  Peer& from = peer(issuer);
  const core::LookupTree tree(cfg_.m, r);
  const core::SubtreeView view(tree, cfg_.b);
  for (const core::Pid holder : view.insertion_targets(from.status())) {
    client(issuer).insert(file, r, holder, nullptr);
  }
}

core::FileId Swarm::insert_named(std::uint64_t key, core::Pid issuer) {
  const core::FileId file{key};
  insert(file, peer(issuer).target_of(file), issuer);
  return file;
}

void Swarm::get(core::FileId file, core::Pid r, core::Pid at,
                Client::GetCallback done) {
  client(at).get(file, r, std::move(done));
}

void Swarm::update(core::FileId file, core::Pid r, std::uint64_t version,
                   core::Pid issuer) {
  Peer& from = peer(issuer);
  const core::LookupTree tree(cfg_.m, r);
  const core::SubtreeView view(tree, cfg_.b);
  for (std::uint32_t t = 0; t < view.subtree_count(); ++t) {
    const std::optional<core::Pid> origin =
        view.insertion_target(t, from.status());
    if (!origin.has_value()) continue;
    Message push;
    push.type = MsgType::kUpdatePush;
    push.from = issuer;
    push.to = *origin;
    push.requester = issuer;
    push.subject = r;
    push.file = file;
    push.version = version;
    network_.send(push);
  }
}

std::optional<core::Pid> Swarm::replicate(core::FileId file, core::Pid r,
                                          core::Pid overloaded,
                                          const core::HoldsCopyFn& holds) {
  Peer& at = peer(overloaded);
  const core::LookupTree tree(cfg_.m, r);
  std::optional<core::Pid> target;
  if (cfg_.b == 0) {
    const std::optional<core::Placement> placement = core::replicate_target(
        tree, overloaded, at.status(), holds, engine_.rng());
    if (placement.has_value()) target = placement->target;
  } else {
    const core::SubtreeView view(tree, cfg_.b);
    target = view.replicate_target(overloaded, at.status(), holds,
                                   engine_.rng());
  }
  if (!target.has_value()) return std::nullopt;
  Message create;
  create.type = MsgType::kCreateReplica;
  create.from = overloaded;
  create.to = *target;
  create.requester = overloaded;
  create.subject = r;
  create.file = file;
  const auto info = at.store().info(file);
  create.version = info.has_value() ? info->version : 0;
  network_.send(create);
  return target;
}

core::Pid Swarm::join(std::optional<core::Pid> requested) {
  const core::Pid p =
      requested.value_or(core::Pid{status_.read().first_dead()});
  assert(!status_.read().is_live(p.value()));
  status_.mutate().set_live(p.value());
  // The joiner obtains a fresh status word from a neighbor (modelled as
  // an O(1) snapshot of the swarm's ground truth) and announces itself to
  // everyone. Peer and Client objects are reused across rejoin cycles:
  // engine timers capture raw pointers to them, so they must live as long
  // as the swarm.
  if (peers_[p.value()]) {
    peers_[p.value()]->rejoin(status_.snapshot());
  } else {
    peers_[p.value()] = std::make_unique<Peer>(p, cfg_.b, status_.snapshot(),
                                               network_, cfg_.peer);
    peers_[p.value()]->set_metrics(&metrics_);
    peers_[p.value()]->attach();
    clients_[p.value()] =
        std::make_unique<Client>(*peers_[p.value()], network_, cfg_.client);
    clients_[p.value()]->set_metrics(&metrics_);
  }
  network_.notify_peer_event(engine_.now(), p, /*live=*/true);
  broadcast_status(p, /*live=*/true);
  // Section 5.1: sweep the swarm for ψ-named files this node is now the
  // authoritative holder of; current holders push them back.
  for (std::uint32_t q = 0; q < util::space_size(cfg_.m); ++q) {
    if (q == p.value() || !status_.read().is_live(q)) continue;
    Message reclaim;
    reclaim.type = MsgType::kReclaim;
    reclaim.from = p;
    reclaim.to = core::Pid{q};
    reclaim.requester = p;
    reclaim.subject = p;
    network_.send(reclaim);
  }
  return p;
}

void Swarm::depart(core::Pid p) {
  assert(status_.read().is_live(p.value()));
  // Graceful: push inserted files to their next holders first (5.2)...
  peers_[p.value()]->graceful_leave();
  // ...then register the departure and go dark.
  broadcast_status(p, /*live=*/false);
  status_.mutate().set_dead(p.value());
  peers_[p.value()]->detach();
  network_.notify_peer_event(engine_.now(), p, /*live=*/false);
}

void Swarm::crash(core::Pid p) {
  assert(status_.read().is_live(p.value()));
  // The store is lost instantly; the failure is then detected and
  // announced, which triggers sibling-subtree recovery at the survivors.
  peers_[p.value()]->detach();
  status_.mutate().set_dead(p.value());
  broadcast_status(p, /*live=*/false);
  network_.notify_peer_event(engine_.now(), p, /*live=*/false);
}

void Swarm::restart(core::Pid p) {
  assert(!status_.read().is_live(p.value()));
  join(p);
}

void Swarm::reannounce() {
  for (std::uint32_t p = 0; p < util::space_size(cfg_.m); ++p) {
    // Only PIDs that ever existed matter; a slot that never had a peer
    // was never announced live to anyone.
    if (!peers_[p]) continue;
    broadcast_status(core::Pid{p}, status_.read().is_live(p));
  }
}

void Swarm::crash_unannounced(core::Pid p) {
  assert(status_.read().is_live(p.value()));
  peers_[p.value()]->detach();
  status_.mutate().set_dead(p.value());
  network_.notify_peer_event(engine_.now(), p, /*live=*/false);
  // No broadcast_status: in SWIM mode the failure detector discovers the
  // silence, gossips the suspicion, and the eventual confirm triggers the
  // survivors' Section 5.3 recovery through Peer::learn_dead.
}

void Swarm::crash_silent(core::Pid p) {
  // Same mechanics as crash_unannounced, but nothing will ever close the
  // loop: survivors never learn of the failure, sibling-subtree recovery
  // never runs, and reannounce() deliberately repairs only liveness
  // views, not lost data — the resulting replica loss is exactly what
  // chaos::Audit must flag.
  crash_unannounced(p);
}

void Swarm::broadcast_status(core::Pid about, bool live) {
  for (std::uint32_t q = 0; q < util::space_size(cfg_.m); ++q) {
    if (q == about.value() || !status_.read().is_live(q)) continue;
    Message announce;
    announce.type = MsgType::kStatusAnnounce;
    announce.from = about;
    announce.to = core::Pid{q};
    announce.subject = about;
    announce.ok = live;
    network_.send(announce);
  }
}

void Swarm::enable_auto_replication(double capacity, double window,
                                    double stop_at,
                                    double removal_threshold) {
  assert(capacity > 0.0 && window > 0.0 && removal_threshold >= 0.0);
  engine_.after(window, [this, capacity, window, stop_at,
                         removal_threshold] {
    auto_replication_tick(capacity, window, stop_at, removal_threshold);
  });
}

void Swarm::auto_replication_tick(double capacity, double window,
                                  double stop_at,
                                  double removal_threshold) {
  const auto budget = static_cast<std::int64_t>(capacity * window);
  const auto cold =
      static_cast<std::uint64_t>(removal_threshold * window);
  for (std::uint32_t p = 0; p < util::space_size(cfg_.m); ++p) {
    if (!status_.read().is_live(p) || !peers_[p]) continue;
    Peer& peer_ref = *peers_[p];
    if (peer_ref.served() > budget) {
      if (peer_ref.shed_hottest().has_value()) ++auto_replicas_;
    } else if (cold > 0) {
      // Counter-based removal (Section 6): cold replicas are dropped
      // locally; the paper's "simple counter-based mechanism". Only
      // replicas go — inserted copies are authoritative.
      auto_removals_ += static_cast<std::int64_t>(
          peer_ref.store().prune_cold_replicas(cold).size());
    }
    peer_ref.reset_window();
  }
  if (engine_.now() + window <= stop_at) {
    engine_.after(window, [this, capacity, window, stop_at,
                           removal_threshold] {
      auto_replication_tick(capacity, window, stop_at, removal_threshold);
    });
  }
}

void Swarm::enable_metrics_sampling(double interval, double stop_at) {
  assert(!sampler_ && "sampling already enabled");
  sampler_ = std::make_unique<obs::Sampler>(
      engine_, registry_, interval, stop_at, [this] {
        metrics_.queue_depth->set(
            static_cast<double>(engine_.queue().size()));
        metrics_.live_peers->set(
            static_cast<double>(status_.read().live_count()));
        std::int64_t hottest = 0;
        for (std::uint32_t p = 0; p < util::space_size(cfg_.m); ++p) {
          if (status_.read().is_live(p) && peers_[p]) {
            hottest = std::max(hottest, peers_[p]->served());
          }
        }
        metrics_.max_served->set(static_cast<double>(hottest));
      });
  sampler_->start();
}

const obs::TimeSeries& Swarm::metrics_series() const {
  static const obs::TimeSeries kEmpty{};
  return sampler_ ? sampler_->series() : kEmpty;
}

std::int64_t Swarm::total_faults() const {
  std::int64_t total = 0;
  for (const auto& c : clients_) {
    if (c) total += c->faults();
  }
  return total;
}

std::vector<double> Swarm::all_latencies() const {
  std::vector<double> out;
  for (const auto& c : clients_) {
    if (!c) continue;
    out.insert(out.end(), c->latencies().begin(), c->latencies().end());
  }
  return out;
}

ReliabilityLedger Swarm::reliability_ledger() const {
  ReliabilityLedger total;
  for (const auto& c : clients_) {
    if (c) total += c->ledger();
  }
  for (const auto& p : peers_) {
    if (p) total.busy_shed += p->busy_shed();
  }
  return total;
}

}  // namespace lesslog::proto
