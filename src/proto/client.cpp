#include "lesslog/proto/client.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace lesslog::proto {

void ClientConfig::validate() const {
  if (std::isnan(timeout) || timeout <= 0.0) {
    throw std::invalid_argument(
        "ClientConfig: timeout must be strictly positive");
  }
  if (max_retries < 0) {
    throw std::invalid_argument(
        "ClientConfig: max_retries must be non-negative");
  }
}

Client::Client(Peer& home, Network& network, ClientConfig cfg)
    : home_(&home), network_(&network), cfg_(cfg),
      // Stripe request ids by home PID so several clients in one swarm
      // never collide.
      next_id_((std::uint64_t{home.pid().value()} << 32) + 1) {
  cfg.validate();
  home_->set_reply_sink([this](const Message& m) { on_reply(m); });
}

std::optional<core::Pid> Client::entry_for(const PendingGet& g) const {
  const util::StatusWord& status = home_->status();
  const core::LookupTree tree(status.width(), g.target);
  // Migration changes only the subtree identifier: the entry point is this
  // node's counterpart in the attempted subtree, or the nearest live proxy
  // below it. With b = 0 the entry is always the home node itself.
  const core::SubtreeView view(tree, home_->fault_bits());
  const std::uint32_t sid =
      (view.subtree_id(home_->pid()) + g.subtree_attempt) %
      view.subtree_count();
  const core::Pid counterpart =
      view.pid_at(view.subtree_vid(home_->pid()), sid);
  if (status.is_live(counterpart.value())) return counterpart;
  return view.find_live_in_subtree(sid, view.subtree_vid(home_->pid()),
                                   status);
}

void Client::get(core::FileId file, core::Pid r, GetCallback done) {
  const std::uint64_t id = next_id_++;
  PendingGet pending;
  pending.file = file;
  pending.target = r;
  pending.done = std::move(done);
  pending.issued_at = network_->engine().now();
  gets_.insert(id, std::move(pending));
  ++issued_;
  LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->gets_issued->inc());
  send_get(id);
}

void Client::send_get(std::uint64_t id) {
  PendingGet* found = gets_.find(id);
  if (found == nullptr) return;
  PendingGet& g = *found;
  const std::optional<core::Pid> entry = entry_for(g);
  if (!entry.has_value()) {
    // The attempted subtree has no live node at all: migrate immediately.
    ++g.migrations;
    LESSLOG_METRICS(
        if (metrics_ != nullptr) metrics_->get_migrations->inc());
    ++g.subtree_attempt;
    const core::LookupTree tree(home_->status().width(), g.target);
    const core::SubtreeView view(tree, home_->fault_bits());
    if (g.subtree_attempt >= view.subtree_count()) {
      finish_get(id, found, false, 0, 0);
      return;
    }
    send_get(id);
    return;
  }
  Message m;
  m.request_id = id;
  m.type = MsgType::kGetRequest;
  m.from = home_->pid();
  m.to = *entry;
  m.requester = home_->pid();
  m.subject = g.target;
  m.file = g.file;
  ++g.generation;
  arm_get_timeout(id, g.generation);
  if (*entry == home_->pid()) {
    // Colocated: the request starts at this very node (the common case);
    // hand it to the peer directly rather than paying a datagram.
    // NOTE: may complete the request synchronously (local copy), so it
    // must come after the bookkeeping above.
    home_->handle(m);
  } else {
    network_->send(m);
  }
}

void Client::arm_get_timeout(std::uint64_t id, int generation) {
  network_->engine().after_fixed(cfg_.timeout, [this, id, generation] {
    PendingGet* found = gets_.find(id);
    if (found == nullptr) return;  // already completed
    PendingGet& g = *found;
    if (g.generation != generation) return;  // a newer leg is in flight
    LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->get_timeouts->inc());
    if (g.retries >= cfg_.max_retries) {
      finish_get(id, found, false, 0, 0);
      return;
    }
    ++g.retries;
    LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->get_retries->inc());
    send_get(id);
  });
}

void Client::finish_get(std::uint64_t id, PendingGet* found, bool ok,
                        std::uint64_t version, int hops) {
  assert(found != nullptr && found == gets_.find(id));
  PendingGet g = std::move(*found);
  gets_.erase(id);
  GetResult result;
  result.ok = ok;
  result.version = version;
  result.latency = network_->engine().now() - g.issued_at;
  result.hops = hops;
  result.retries = g.retries;
  result.migrations = g.migrations;
  if (ok) {
    latencies_.push_back(result.latency);
    LESSLOG_METRICS(if (metrics_ != nullptr) {
      metrics_->get_latency->add(result.latency);
    });
  } else {
    ++faults_;
    LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->get_faults->inc());
  }
  if (g.done) g.done(result);
}

void Client::on_reply(const Message& m) {
  if (m.type == MsgType::kInsertAck) {
    PendingInsert* ins = inserts_.find(m.request_id);
    if (ins == nullptr) return;
    auto done = std::move(ins->done);
    inserts_.erase(m.request_id);
    if (done) done(true);
    return;
  }
  assert(m.type == MsgType::kGetReply);
  PendingGet* found = gets_.find(m.request_id);
  if (found == nullptr) return;  // late duplicate after completion
  PendingGet& g = *found;
  if (m.ok) {
    finish_get(m.request_id, found, true, m.version, m.hop_count);
    return;
  }
  // Definitive miss in that subtree: migrate to the next identifier.
  ++g.migrations;
  LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->get_migrations->inc());
  ++g.subtree_attempt;
  const core::LookupTree tree(home_->status().width(), g.target);
  const core::SubtreeView view(tree, home_->fault_bits());
  if (g.subtree_attempt >= view.subtree_count()) {
    finish_get(m.request_id, found, false, 0, m.hop_count);
    return;
  }
  g.retries = 0;
  send_get(m.request_id);
}

void Client::insert(core::FileId file, core::Pid r, core::Pid at,
                    std::function<void(bool)> done) {
  const std::uint64_t id = next_id_++;
  PendingInsert pending{file, r, at, std::move(done), 0};
  inserts_.insert(id, std::move(pending));
  send_insert(id);
}

void Client::send_insert(std::uint64_t id) {
  PendingInsert* found = inserts_.find(id);
  if (found == nullptr) return;
  PendingInsert& ins = *found;
  Message m;
  m.request_id = id;
  m.type = MsgType::kInsertRequest;
  m.from = home_->pid();
  m.to = ins.at;
  m.requester = home_->pid();
  m.subject = ins.target;
  m.file = ins.file;
  network_->send(m);
  const int expected = ins.retries;
  network_->engine().after_fixed(cfg_.timeout, [this, id, expected] {
    PendingInsert* pending = inserts_.find(id);
    if (pending == nullptr) return;
    if (pending->retries != expected) return;
    if (pending->retries >= cfg_.max_retries) {
      auto done = std::move(pending->done);
      inserts_.erase(id);
      if (done) done(false);
      return;
    }
    ++pending->retries;
    send_insert(id);
  });
}

}  // namespace lesslog::proto
