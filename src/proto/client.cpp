#include "lesslog/proto/client.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "lesslog/util/rng.hpp"

namespace lesslog::proto {

namespace {
/// Karn-clean samples required before the hedge delay trusts the
/// empirical percentile; below this the hedge fires at half the base
/// timeout.
constexpr std::size_t kHedgeWarmup = 16;
}  // namespace

void ClientConfig::validate() const {
  if (std::isnan(timeout) || timeout <= 0.0) {
    throw std::invalid_argument(
        "ClientConfig: timeout must be strictly positive");
  }
  if (max_retries < 0) {
    throw std::invalid_argument(
        "ClientConfig: max_retries must be non-negative");
  }
  if (std::isnan(rto_floor) || rto_floor <= 0.0) {
    throw std::invalid_argument(
        "ClientConfig: rto_floor must be strictly positive");
  }
  if (std::isnan(rto_cap) || rto_cap < rto_floor) {
    throw std::invalid_argument(
        "ClientConfig: rto_cap must be at least rto_floor");
  }
  if (std::isnan(backoff_base) || backoff_base < 1.0) {
    throw std::invalid_argument(
        "ClientConfig: backoff_base must be at least 1");
  }
  if (std::isnan(retry_jitter) || retry_jitter < 0.0 || retry_jitter >= 1.0) {
    throw std::invalid_argument(
        "ClientConfig: retry_jitter must be in [0, 1)");
  }
  if (std::isnan(hedge_percentile) ||
      (hedge_percentile != 0.0 &&
       (hedge_percentile < 0.5 || hedge_percentile >= 1.0))) {
    throw std::invalid_argument(
        "ClientConfig: hedge_percentile must be 0 (off) or in [0.5, 1)");
  }
  if (std::isnan(busy_backoff) || busy_backoff <= 0.0) {
    throw std::invalid_argument(
        "ClientConfig: busy_backoff must be strictly positive");
  }
}

Client::Client(Peer& home, Network& network, ClientConfig cfg)
    : home_(&home), network_(&network), cfg_(cfg),
      // Stripe request ids by home PID so several clients in one swarm
      // never collide.
      next_id_((std::uint64_t{home.pid().value()} << 32) + 1) {
  cfg.validate();
  home_->set_reply_sink([this](const Message& m) { on_reply(m); });
}

ReliabilityLedger Client::ledger() const noexcept {
  ReliabilityLedger l;
  l.issued = issued_;
  l.ok = static_cast<std::int64_t>(latencies_.size());
  l.faults = faults_;
  l.rtt_samples = rtt_samples_;
  l.hedges_launched = hedges_launched_;
  l.hedge_won = hedge_won_;
  l.hedge_cancelled = hedge_cancelled_;
  l.busy_received = busy_received_;
  return l;
}

std::optional<core::Pid> Client::entry_at(core::Pid target,
                                          std::uint32_t attempt) const {
  const util::StatusWord& status = home_->status();
  const core::LookupTree tree(status.width(), target);
  // Migration changes only the subtree identifier: the entry point is this
  // node's counterpart in the attempted subtree, or the nearest live proxy
  // below it. With b = 0 the entry is always the home node itself.
  const core::SubtreeView view(tree, home_->fault_bits());
  const std::uint32_t sid =
      (view.subtree_id(home_->pid()) + attempt) % view.subtree_count();
  const std::uint32_t vid = view.subtree_vid(home_->pid());
  const core::Pid counterpart = view.pid_at(vid, sid);
  if (cfg_.suspicion_routing) {
    const std::vector<std::uint32_t>* suspects = home_->liveness().suspects();
    if (suspects != nullptr) {
      // Failure-detector doubt masked into a scratch bitmap: suspected
      // peers are skipped up front instead of being discovered dead by a
      // timeout. When doubt covers every candidate in the subtree, fall
      // through to bitmap-only routing — a false mass-suspicion must not
      // make the subtree unreachable.
      util::StatusWord masked = status;
      for (const std::uint32_t s : *suspects) masked.set_dead(s);
      if (masked.is_live(counterpart.value())) return counterpart;
      const std::optional<core::Pid> alt =
          view.find_live_in_subtree(sid, vid, masked);
      if (alt.has_value()) return alt;
    }
  }
  if (status.is_live(counterpart.value())) return counterpart;
  return view.find_live_in_subtree(sid, vid, status);
}

void Client::get(core::FileId file, core::Pid r, GetCallback done) {
  const std::uint64_t id = next_id_++;
  PendingGet pending;
  pending.file = file;
  pending.target = r;
  pending.done = std::move(done);
  pending.issued_at = network_->engine().now();
  gets_.insert(id, std::move(pending));
  ++issued_;
  LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->gets_issued->inc());
  send_get(id);
  // send_get may have completed the request synchronously (colocated
  // serve, or identifier exhaustion) — only a still-pending one hedges.
  if (cfg_.hedge_percentile > 0.0 && gets_.find(id) != nullptr) {
    arm_hedge(id);
  }
}

void Client::send_get(std::uint64_t id) {
  PendingGet* found = gets_.find(id);
  if (found == nullptr) return;
  PendingGet& g = *found;
  const std::optional<core::Pid> entry = entry_at(g.target, g.subtree_attempt);
  if (!entry.has_value()) {
    // The attempted subtree has no live node at all: migrate immediately,
    // keeping the current leg's retry budget (only definitive replies
    // refresh it).
    migrate_get(id, found, 0, 0.0, /*reset_retries=*/false);
    return;
  }
  Message m;
  m.request_id = id;
  m.type = MsgType::kGetRequest;
  m.from = home_->pid();
  m.to = *entry;
  m.requester = home_->pid();
  m.subject = g.target;
  m.file = g.file;
  ++g.generation;
  ++g.transmissions;
  arm_get_timeout(id, g.generation);
  if (*entry == home_->pid()) {
    // Colocated: the request starts at this very node (the common case);
    // hand it to the peer directly rather than paying a datagram.
    // NOTE: may complete the request synchronously (local copy), so it
    // must come after the bookkeeping above.
    home_->handle(m);
  } else {
    network_->send(m);
  }
}

void Client::arm_get_timeout(std::uint64_t id, int generation) {
  if (!cfg_.adaptive) {
    // Fixed-timer core: the exact pre-layer schedule, on the event
    // queue's FIFO-lane fast path.
    network_->engine().after_fixed(cfg_.timeout, [this, id, generation] {
      handle_get_timeout(id, generation);
    });
    return;
  }
  const PendingGet* g = gets_.find(id);
  const int retries = g != nullptr ? g->retries : 0;
  double delay = estimator_.rto(cfg_.timeout, cfg_.rto_floor, cfg_.rto_cap);
  for (int i = 0; i < retries && delay < cfg_.rto_cap; ++i) {
    delay *= cfg_.backoff_base;
  }
  delay = std::min(delay, cfg_.rto_cap);
  if (retries > 0 && cfg_.retry_jitter > 0.0) {
    // Deterministic +/- jitter hashed from (seed, request id, leg): no
    // draw from any shared RNG stream, so enabling the layer perturbs
    // nothing else and reruns stay bit-identical.
    delay *= 1.0 + cfg_.retry_jitter * (2.0 * leg_jitter(id, generation) - 1.0);
    delay = std::max(delay, cfg_.rto_floor);
  }
  // Computed (non-constant) delay: must go through the wheel/heap, never
  // the fixed-constant FIFO lanes.
  network_->engine().after(delay, [this, id, generation] {
    handle_get_timeout(id, generation);
  });
}

void Client::handle_get_timeout(std::uint64_t id, int generation) {
  PendingGet* found = gets_.find(id);
  if (found == nullptr) return;  // already completed
  PendingGet& g = *found;
  if (g.generation != generation) return;  // a newer leg is in flight
  LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->get_timeouts->inc());
  if (g.retries >= cfg_.max_retries) {
    finish_get(id, found, false, 0, 0, /*via_hedge=*/false);
    return;
  }
  ++g.retries;
  LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->get_retries->inc());
  send_get(id);
}

void Client::migrate_get(std::uint64_t id, PendingGet* found, int hops,
                         double delay, bool reset_retries) {
  PendingGet& g = *found;
  ++g.migrations;
  LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->get_migrations->inc());
  ++g.subtree_attempt;
  if (g.hedged && !g.hedge_resolved && g.subtree_attempt == g.hedge_attempt) {
    // The hedge leg is already in flight down the target subtree: adopt
    // it as the primary instead of sending a duplicate, with a fresh
    // retry budget and timeout on the adopted leg.
    g.retries = 0;
    ++g.generation;
    arm_get_timeout(id, g.generation);
    return;
  }
  if (g.hedged && g.hedge_resolved && g.subtree_attempt == g.hedge_attempt) {
    // The hedge already answered for that subtree (miss or shed): the
    // migration it would have cost is skipped outright.
    ++g.migrations;
    LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->get_migrations->inc());
    ++g.subtree_attempt;
  }
  const core::LookupTree tree(home_->status().width(), g.target);
  const core::SubtreeView view(tree, home_->fault_bits());
  if (g.subtree_attempt >= view.subtree_count()) {
    if (g.busy_bounces > 0 && g.busy_wraps < cfg_.max_retries) {
      // The walk was shed somewhere along the way: a kBusy peer was
      // loaded, not dead, so exhaustion is not definitive — wrap and
      // revisit. A wrap consumes the sheds seen so far and the wrap
      // count is capped, so a request always terminates.
      g.busy_bounces = 0;
      ++g.busy_wraps;
      g.subtree_attempt %= view.subtree_count();
    } else {
      finish_get(id, found, false, 0, hops, /*via_hedge=*/false);
      return;
    }
  }
  if (reset_retries) g.retries = 0;
  if (delay <= 0.0) {
    send_get(id);
    return;
  }
  // Deferred re-route (the BUSY backoff): stale the shed leg's pending
  // timeout now so it cannot fire a duplicate send during the wait.
  ++g.generation;
  const int generation = g.generation;
  network_->engine().after(delay, [this, id, generation] {
    PendingGet* p = gets_.find(id);
    if (p == nullptr || p->generation != generation) return;
    send_get(id);
  });
}

void Client::arm_hedge(std::uint64_t id) {
  double delay = estimator_.window_size() >= kHedgeWarmup
                     ? estimator_.percentile(cfg_.hedge_percentile)
                     : 0.5 * cfg_.timeout;
  // Colocated serves contribute near-zero samples; never hedge *faster*
  // than the adaptive floor.
  delay = std::max(delay, cfg_.rto_floor);
  network_->engine().after(delay, [this, id] {
    PendingGet* found = gets_.find(id);
    if (found == nullptr) return;  // served before the hedge delay ran out
    PendingGet& g = *found;
    // Only a first-leg, untouched request hedges: once it has retried or
    // migrated, the backoff machinery owns it.
    if (g.hedged || g.retries > 0 || g.migrations > 0) return;
    launch_hedge(id, g);
  });
}

void Client::launch_hedge(std::uint64_t id, PendingGet& g) {
  const core::LookupTree tree(home_->status().width(), g.target);
  const core::SubtreeView view(tree, home_->fault_bits());
  const std::uint32_t alt = g.subtree_attempt + 1;
  if (alt >= view.subtree_count()) return;  // no alternate replica subtree
  const std::optional<core::Pid> entry = entry_at(g.target, alt);
  if (!entry.has_value()) return;  // nothing live to race against
  const std::uint64_t hedge_id = next_id_++;
  g.hedged = true;
  g.hedge_attempt = alt;
  g.hedge_id = hedge_id;
  hedge_ids_.insert(hedge_id, id);
  ++hedges_launched_;
  LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->hedges->inc());
  Message m;
  m.request_id = hedge_id;
  m.type = MsgType::kGetRequest;
  m.from = home_->pid();
  m.to = *entry;
  m.requester = home_->pid();
  m.subject = g.target;
  m.file = g.file;
  if (*entry == home_->pid()) {
    home_->handle(m);  // may complete synchronously; bookkeeping is done
  } else {
    network_->send(m);
  }
}

double Client::busy_delay(const PendingGet& g) const noexcept {
  // Exponential in the number of subtree moves already made, capped: a
  // request bounced around a loaded system backs off harder each hop.
  double d = cfg_.busy_backoff;
  for (int i = 0; i < g.migrations && d < cfg_.rto_cap; ++i) {
    d *= cfg_.backoff_base;
  }
  return std::min(d, cfg_.rto_cap);
}

double Client::leg_jitter(std::uint64_t id, int generation) const noexcept {
  std::uint64_t state = cfg_.seed ^ (id * 0x9e3779b97f4a7c15ULL) ^
                        (static_cast<std::uint64_t>(generation) << 32);
  return static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
}

void Client::finish_get(std::uint64_t id, PendingGet* found, bool ok,
                        std::uint64_t version, int hops, bool via_hedge) {
  assert(found != nullptr && found == gets_.find(id));
  PendingGet g = std::move(*found);
  gets_.erase(id);
  GetResult result;
  result.ok = ok;
  result.version = version;
  result.latency = network_->engine().now() - g.issued_at;
  result.hops = hops;
  result.retries = g.retries;
  result.migrations = g.migrations;
  if (g.hedged) {
    // Every launched hedge resolves exactly once, right here: either the
    // hedge leg completed the request, or the other leg did (timeout
    // exhaustion included) and the hedge is cancelled. Late replies to
    // the retired correlation id fall through on_reply's guards.
    if (via_hedge) {
      ++hedge_won_;
      LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->hedge_wins->inc());
    } else {
      ++hedge_cancelled_;
      LESSLOG_METRICS(
          if (metrics_ != nullptr) metrics_->hedge_cancels->inc());
    }
    hedge_ids_.erase(g.hedge_id);  // no-op if the hedge already resolved
  }
  if (ok) {
    latencies_.push_back(result.latency);
    LESSLOG_METRICS(if (metrics_ != nullptr) {
      metrics_->get_latency->add(result.latency);
    });
    // Karn's rule, conservatively: only a request served on its very
    // first transmission — no retry, no migration, no hedge — yields an
    // unambiguous round-trip sample. Zero-latency colocated serves never
    // crossed the wire and are excluded too.
    if (reliability_active() && g.transmissions == 1 && !g.hedged &&
        result.latency > 0.0) {
      estimator_.add_sample(result.latency);
      ++rtt_samples_;
      LESSLOG_METRICS(
          if (metrics_ != nullptr) metrics_->rtt_samples->inc());
    }
  } else {
    ++faults_;
    LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->get_faults->inc());
  }
  if (g.done) g.done(result);
}

void Client::on_reply(const Message& m) {
  if (m.type == MsgType::kInsertAck) {
    PendingInsert* ins = inserts_.find(m.request_id);
    if (ins == nullptr) return;
    auto done = std::move(ins->done);
    inserts_.erase(m.request_id);
    if (done) done(true);
    return;
  }
  assert(m.type == MsgType::kGetReply || m.type == MsgType::kBusy);
  std::uint64_t id = m.request_id;
  bool hedge_leg = false;
  PendingGet* found = gets_.find(id);
  if (found == nullptr) {
    const std::uint64_t* primary = hedge_ids_.find(m.request_id);
    if (primary == nullptr) return;  // late duplicate after completion
    id = *primary;
    hedge_leg = true;
    found = gets_.find(id);
    if (found == nullptr) {
      // The primary finished while this alias lingered; retire it.
      hedge_ids_.erase(m.request_id);
      return;
    }
  }
  PendingGet& g = *found;
  if (m.type == MsgType::kBusy) {
    ++busy_received_;
    LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->busy_received->inc());
    if (hedge_leg && g.subtree_attempt != g.hedge_attempt) {
      // The shed hedge leg is abandoned; the primary leg keeps going.
      g.hedge_resolved = true;
      hedge_ids_.erase(m.request_id);
      return;
    }
    // The serving subtree refused us: migrate, but only after a backoff
    // so a loaded peer is not immediately hammered from the next angle.
    ++g.busy_bounces;
    migrate_get(id, found, m.hop_count, busy_delay(g), /*reset_retries=*/true);
    return;
  }
  if (m.ok) {
    finish_get(id, found, true, m.version, m.hop_count, hedge_leg);
    return;
  }
  if (hedge_leg && g.subtree_attempt != g.hedge_attempt) {
    // Definitive miss on the hedge leg while the primary still works an
    // earlier subtree: remember the answer, don't disturb the primary.
    g.hedge_resolved = true;
    hedge_ids_.erase(m.request_id);
    return;
  }
  // Definitive miss in that subtree: migrate to the next identifier.
  migrate_get(id, found, m.hop_count, 0.0, /*reset_retries=*/true);
}

void Client::insert(core::FileId file, core::Pid r, core::Pid at,
                    std::function<void(bool)> done) {
  const std::uint64_t id = next_id_++;
  PendingInsert pending{file, r, at, std::move(done), 0};
  inserts_.insert(id, std::move(pending));
  send_insert(id);
}

void Client::send_insert(std::uint64_t id) {
  PendingInsert* found = inserts_.find(id);
  if (found == nullptr) return;
  PendingInsert& ins = *found;
  Message m;
  m.request_id = id;
  m.type = MsgType::kInsertRequest;
  m.from = home_->pid();
  m.to = ins.at;
  m.requester = home_->pid();
  m.subject = ins.target;
  m.file = ins.file;
  network_->send(m);
  const int expected = ins.retries;
  network_->engine().after_fixed(cfg_.timeout, [this, id, expected] {
    PendingInsert* pending = inserts_.find(id);
    if (pending == nullptr) return;
    if (pending->retries != expected) return;
    if (pending->retries >= cfg_.max_retries) {
      auto done = std::move(pending->done);
      inserts_.erase(id);
      if (done) done(false);
      return;
    }
    ++pending->retries;
    send_insert(id);
  });
}

}  // namespace lesslog::proto
