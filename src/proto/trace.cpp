#include "lesslog/proto/trace.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace lesslog::proto {

Trace::Trace(Swarm& swarm) : swarm_(&swarm) { swarm_->add_sink(*this); }

Trace::~Trace() { swarm_->remove_sink(*this); }

void Trace::on_deliver(double time, const Message& m) {
  records_.push_back(TraceRecord{time, m});
}

std::vector<TraceRecord> Trace::of_type(MsgType t) const {
  std::vector<TraceRecord> out;
  for (const TraceRecord& r : records_) {
    if (r.message.type == t) out.push_back(r);
  }
  return out;
}

std::size_t Trace::count(MsgType t) const {
  std::size_t n = 0;
  for (const TraceRecord& r : records_) {
    if (r.message.type == t) ++n;
  }
  return n;
}

std::string Trace::render() const {
  std::ostringstream out;
  out << std::fixed << std::setprecision(3);
  for (const TraceRecord& r : records_) {
    const Message& m = r.message;
    out << "t=" << r.time << "s  " << std::setw(7) << type_name(m.type)
        << "  P(" << m.from.value() << ") -> P(" << m.to.value() << ")";
    switch (m.type) {
      case MsgType::kGetRequest:
        out << "  target P(" << m.subject.value() << "), hop "
            << static_cast<int>(m.hop_count);
        break;
      case MsgType::kGetReply:
        out << "  " << (m.ok ? "HIT" : "MISS") << " after "
            << static_cast<int>(m.hop_count) << " hops";
        break;
      case MsgType::kUpdatePush:
      case MsgType::kFilePush:
        out << "  file " << m.file.key() << " v" << m.version;
        break;
      case MsgType::kStatusAnnounce:
        out << "  P(" << m.subject.value() << ") "
            << (m.ok ? "live" : "dead");
        break;
      default:
        break;
    }
    out << "\n";
  }
  return out.str();
}

void Trace::write_jsonl(std::ostream& out) const {
  for (const TraceRecord& r : records_) {
    obs::write_delivery_jsonl(out, r.time, r.message);
  }
}

}  // namespace lesslog::proto
