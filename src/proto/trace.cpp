#include "lesslog/proto/trace.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace lesslog::proto {

Trace::Trace(Swarm& swarm) : swarm_(&swarm) { rearm(); }

void Trace::rearm() {
  for (std::uint32_t p = 0; p < util::space_size(swarm_->width()); ++p) {
    if (!swarm_->status().is_live(p)) continue;
    Peer& peer = swarm_->peer(core::Pid{p});
    swarm_->network().attach(core::Pid{p}, [this, &peer](const Message& m) {
      records_.push_back(TraceRecord{swarm_->engine().now(), m});
      peer.handle(m);
    });
  }
}

std::vector<TraceRecord> Trace::of_type(MsgType t) const {
  std::vector<TraceRecord> out;
  for (const TraceRecord& r : records_) {
    if (r.message.type == t) out.push_back(r);
  }
  return out;
}

std::size_t Trace::count(MsgType t) const {
  std::size_t n = 0;
  for (const TraceRecord& r : records_) {
    if (r.message.type == t) ++n;
  }
  return n;
}

std::string Trace::render() const {
  std::ostringstream out;
  out << std::fixed << std::setprecision(3);
  for (const TraceRecord& r : records_) {
    const Message& m = r.message;
    out << "t=" << r.time << "s  " << std::setw(7) << type_name(m.type)
        << "  P(" << m.from.value() << ") -> P(" << m.to.value() << ")";
    switch (m.type) {
      case MsgType::kGetRequest:
        out << "  target P(" << m.subject.value() << "), hop "
            << static_cast<int>(m.hop_count);
        break;
      case MsgType::kGetReply:
        out << "  " << (m.ok ? "HIT" : "MISS") << " after "
            << static_cast<int>(m.hop_count) << " hops";
        break;
      case MsgType::kUpdatePush:
      case MsgType::kFilePush:
        out << "  file " << m.file.key() << " v" << m.version;
        break;
      case MsgType::kStatusAnnounce:
        out << "  P(" << m.subject.value() << ") "
            << (m.ok ? "live" : "dead");
        break;
      default:
        break;
    }
    out << "\n";
  }
  return out.str();
}

void Trace::write_jsonl(std::ostream& out) const {
  for (const TraceRecord& r : records_) {
    const Message& m = r.message;
    out << "{\"t\":" << r.time << ",\"type\":\"" << type_name(m.type)
        << "\",\"from\":" << m.from.value() << ",\"to\":" << m.to.value()
        << ",\"requester\":" << m.requester.value()
        << ",\"subject\":" << m.subject.value()
        << ",\"file\":" << m.file.key() << ",\"version\":" << m.version
        << ",\"hops\":" << static_cast<int>(m.hop_count)
        << ",\"ok\":" << (m.ok ? "true" : "false") << "}\n";
  }
}

}  // namespace lesslog::proto
