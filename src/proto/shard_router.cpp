#include "lesslog/proto/shard_router.hpp"

#include <cassert>
#include <stdexcept>

#include "lesslog/proto/network.hpp"

namespace lesslog::proto {

ShardRouter::ShardRouter(const ShardMap& map)
    : shards_(map.shards()), map_(map), box_(shards_ * shards_) {
  if (shards_ == 0) {
    throw std::invalid_argument("ShardRouter: shards must be >= 1");
  }
}

void ShardRouter::post(std::size_t from, std::size_t to, double deliver_at,
                       const WireBuffer& wire) {
  assert(from < shards_ && to < shards_ && from != to);
  Box& box = box_[from * shards_ + to];
  box.at.push_back(deliver_at);
  box.wire.push_back(wire);
}

void ShardRouter::drain_into(std::size_t dest, Network& net) {
  assert(dest < shards_);
  for (std::size_t from = 0; from < shards_; ++from) {
    Box& box = box_[from * shards_ + dest];
    net.deliver_batch(box.at.data(), box.wire.data(), box.at.size());
    box.at.clear();
    box.wire.clear();
  }
}

bool ShardRouter::empty() const noexcept {
  for (const Box& box : box_) {
    if (!box.at.empty()) return false;
  }
  return true;
}

}  // namespace lesslog::proto
