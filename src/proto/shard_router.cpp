#include "lesslog/proto/shard_router.hpp"

#include <cassert>
#include <stdexcept>

#include "lesslog/proto/network.hpp"

namespace lesslog::proto {

ShardRouter::ShardRouter(std::size_t shards, std::uint32_t pids_per_shard)
    : shards_(shards), block_(pids_per_shard), box_(shards * shards) {
  if (shards == 0 || pids_per_shard == 0) {
    throw std::invalid_argument(
        "ShardRouter: shards and pids_per_shard must be >= 1");
  }
}

void ShardRouter::post(std::size_t from, std::size_t to, double deliver_at,
                       const WireBuffer& wire) {
  assert(from < shards_ && to < shards_ && from != to);
  box_[from * shards_ + to].push_back(Parcel{deliver_at, wire});
}

void ShardRouter::drain_into(std::size_t dest, Network& net) {
  assert(dest < shards_);
  for (std::size_t from = 0; from < shards_; ++from) {
    std::vector<Parcel>& box = box_[from * shards_ + dest];
    for (const Parcel& p : box) net.deliver_at(p.at, p.wire);
    box.clear();
  }
}

bool ShardRouter::empty() const noexcept {
  for (const std::vector<Parcel>& box : box_) {
    if (!box.empty()) return false;
  }
  return true;
}

}  // namespace lesslog::proto
