#include "lesslog/proto/peer.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "lesslog/core/children_list.hpp"
#include "lesslog/core/replication.hpp"
#include "lesslog/util/hashing.hpp"

namespace lesslog::proto {

void PeerConfig::validate() const {
  if (std::isnan(push_timeout) || push_timeout <= 0.0) {
    throw std::invalid_argument(
        "PeerConfig: push_timeout must be strictly positive");
  }
  if (push_max_retries < 0) {
    throw std::invalid_argument(
        "PeerConfig: push_max_retries must be non-negative");
  }
  if (std::isnan(push_backoff_base) || push_backoff_base < 1.0) {
    throw std::invalid_argument(
        "PeerConfig: push_backoff_base must be at least 1");
  }
  if (std::isnan(push_backoff_cap) || push_backoff_cap < push_timeout) {
    throw std::invalid_argument(
        "PeerConfig: push_backoff_cap must be at least push_timeout");
  }
  if (busy_budget < 0) {
    throw std::invalid_argument(
        "PeerConfig: busy_budget must be non-negative");
  }
  if (std::isnan(busy_refill) || busy_refill < 0.0) {
    throw std::invalid_argument(
        "PeerConfig: busy_refill must be non-negative");
  }
  if (busy_budget > 0 && busy_refill <= 0.0) {
    throw std::invalid_argument(
        "PeerConfig: a positive busy_budget needs a positive busy_refill "
        "(a bucket that never refills sheds forever)");
  }
}

Peer::Peer(core::Pid pid, int b, util::StatusWord initial_status,
           Network& network, PeerConfig cfg)
    : Peer(pid, b, util::CowStatus(std::move(initial_status)), network,
           cfg) {}

Peer::Peer(core::Pid pid, int b, util::CowStatus initial_status,
           Network& network, PeerConfig cfg)
    : pid_(pid), b_(b), view_(&oracle_),
      oracle_(std::move(initial_status)), network_(&network), cfg_(cfg),
      busy_tokens_(static_cast<double>(cfg.busy_budget)),
      // Stripe push ids per peer so concurrent pushes never collide.
      next_push_id_((std::uint64_t{0xF11EULL} << 48) |
                    (std::uint64_t{pid.value()} << 20)) {
  cfg_.validate();
  assert(b_ >= 0 && b_ < status().width());
}

void Peer::attach() {
  // Raw registration: the dispatch slot is (this, shim) — per delivery
  // the network makes one indirect call straight into handle().
  network_->attach_raw(pid_, this, [](void* ctx, const Message& m) {
    static_cast<Peer*>(ctx)->handle(m);
  });
}

void Peer::detach() { network_->detach(pid_); }

void Peer::rejoin(util::CowStatus fresh_status) {
  view_->reset(std::move(fresh_status));
  store_ = core::FileStore{};
  placed_.clear();
  pending_pushes_.clear();  // stale push timers see an empty map: no-ops
  served_ = 0;
  forwarded_ = 0;
  // A rejoined node starts with a full service budget; busy_shed_ is a
  // ledger cell and survives the rejoin.
  busy_tokens_ = static_cast<double>(cfg_.busy_budget);
  busy_last_refill_ = network_->engine().now();
  attach();
}

void Peer::handle(const Message& m) {
  assert(m.to == pid_);
  switch (m.type) {
    case MsgType::kGetRequest: on_get(m); return;
    case MsgType::kInsertRequest: on_insert(m); return;
    case MsgType::kCreateReplica: on_create_replica(m); return;
    case MsgType::kUpdatePush: on_update(m); return;
    case MsgType::kStatusAnnounce: on_status(m); return;
    case MsgType::kFilePush: on_file_push(m); return;
    case MsgType::kFilePushAck: on_push_ack(m); return;
    case MsgType::kReclaim: on_reclaim(m); return;
    case MsgType::kGetReply:
    case MsgType::kInsertAck:
    case MsgType::kBusy:
      if (reply_sink_) reply_sink_(m);
      return;
    case MsgType::kPing:
    case MsgType::kPingAck:
    case MsgType::kPingReq:
      // SWIM probe traffic belongs to the colocated membership runtime;
      // without one (oracle mode) the datagram is silently dropped.
      if (membership_fn_ != nullptr) membership_fn_(membership_ctx_, m);
      return;
  }
}

core::Pid Peer::target_of(core::FileId f) const noexcept {
  return core::Pid{util::psi_u64(f.key(), status().width())};
}

std::optional<core::Pid> Peer::next_hop(core::Pid r) const {
  const util::StatusWord& st = status();
  const core::LookupTree tree(st.width(), r);
  const core::SubtreeView view(tree, b_);
  if (const std::optional<core::Pid> up =
          view.first_alive_subtree_ancestor(pid_, st)) {
    return up;
  }
  // Every subtree ancestor is dead; the original copy (if any) lives at
  // the subtree's stand-in holder. Forwarding to ourselves would loop.
  const std::uint32_t sid = view.subtree_id(pid_);
  if (!st.is_live(view.subtree_root(sid).value())) {
    const std::optional<core::Pid> stand_in =
        view.insertion_target(sid, st);
    if (stand_in.has_value() && *stand_in != pid_) return stand_in;
  }
  return std::nullopt;
}

bool Peer::admit_get() {
  const double now = network_->engine().now();
  const double budget = static_cast<double>(cfg_.busy_budget);
  busy_tokens_ = std::min(
      budget, busy_tokens_ + (now - busy_last_refill_) * cfg_.busy_refill);
  busy_last_refill_ = now;
  if (busy_tokens_ < 1.0) return false;
  busy_tokens_ -= 1.0;
  return true;
}

void Peer::reply_busy(const Message& request) {
  Message reply;
  reply.request_id = request.request_id;
  reply.type = MsgType::kBusy;
  reply.from = pid_;
  reply.to = request.requester;
  reply.requester = request.requester;
  reply.subject = request.subject;
  reply.file = request.file;
  reply.hop_count = request.hop_count;
  reply.ok = false;
  if (request.requester == pid_) {
    if (reply_sink_) reply_sink_(reply);
    return;
  }
  network_->send(reply);
}

void Peer::on_get(const Message& m) {
  if (cfg_.busy_budget > 0 && !admit_get()) {
    // Over the service budget: refuse loudly instead of queueing into a
    // requester-side timeout. The requester migrates with backoff.
    ++busy_shed_;
    LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->busy_shed->inc());
    reply_busy(m);
    return;
  }
  if (const std::optional<std::uint64_t> version = store_.serve(m.file)) {
    ++served_;
    LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->served->inc());
    reply_get(m, /*ok=*/true, *version);
    return;
  }
  // Hop-count fence: forwarding ascends strictly in subtree VID plus at
  // most one stand-in jump, so anything past m + 1 hops means stale
  // status words have produced a cycle; fail fast instead of looping.
  if (m.hop_count > static_cast<std::uint8_t>(status().width() + 1)) {
    reply_get(m, /*ok=*/false, 0);
    return;
  }
  const std::optional<core::Pid> next = next_hop(m.subject);
  if (!next.has_value()) {
    reply_get(m, /*ok=*/false, 0);
    return;
  }
  ++forwarded_;
  LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->forwarded->inc());
  Message fwd = m;
  fwd.from = pid_;
  fwd.to = *next;
  ++fwd.hop_count;
  network_->send(fwd);
}

void Peer::reply_get(const Message& request, bool ok, std::uint64_t version) {
  Message reply;
  reply.request_id = request.request_id;
  reply.type = MsgType::kGetReply;
  reply.from = pid_;
  reply.to = request.requester;
  reply.requester = request.requester;
  reply.subject = request.subject;
  reply.file = request.file;
  reply.version = version;
  reply.hop_count = request.hop_count;
  reply.ok = ok;
  // The requester's client is colocated with its peer: a reply to
  // ourselves is a local upcall, not a datagram.
  if (request.requester == pid_) {
    if (reply_sink_) reply_sink_(reply);
    return;
  }
  network_->send(reply);
}

void Peer::on_insert(const Message& m) {
  store_.put_inserted(m.file, m.version);
  Message ack;
  ack.request_id = m.request_id;
  ack.type = MsgType::kInsertAck;
  ack.from = pid_;
  ack.to = m.requester;
  ack.requester = m.requester;
  ack.file = m.file;
  ack.ok = true;
  network_->send(ack);
}

void Peer::on_create_replica(const Message& m) {
  store_.put_replica(m.file, m.version);
}

void Peer::on_update(const Message& m) {
  // Non-holders prune the broadcast (paper: "Otherwise, the child node
  // discards the request."). The push's origin always holds the file.
  if (!store_.apply_update(m.file, m.version)) return;
  const util::StatusWord& st = status();
  const core::LookupTree tree(st.width(), m.subject);
  const core::SubtreeView view(tree, b_);
  for (const core::Pid child : view.children_list(pid_, st)) {
    Message push = m;
    push.from = pid_;
    push.to = child;
    ++push.hop_count;
    network_->send(push);
  }
  // A stand-in for a dead subtree root also covers the replicas hanging
  // off the dead root's children list (the proportional placements).
  const std::uint32_t sid = view.subtree_id(pid_);
  const core::Pid sub_root = view.subtree_root(sid);
  if (pid_ != sub_root && !st.is_live(sub_root.value()) &&
      !view.live_vid_above(pid_, st)) {
    for (const core::Pid child : view.children_list(sub_root, st)) {
      if (child == pid_) continue;
      Message push = m;
      push.from = pid_;
      push.to = child;
      ++push.hop_count;
      network_->send(push);
    }
  }
}

void Peer::on_status(const Message& m) {
  if (m.ok) {
    learn_live(m.subject);
  } else {
    learn_dead(m.subject);
  }
}

void Peer::learn_live(core::Pid subject) {
  // believe_live is a check-before-mutate no-op when the bit is already
  // set: a redundant announcement must not clone a shared snapshot — at
  // scale most peers never diverge from the swarm-wide construction
  // snapshot at all.
  view_->believe_live(subject.value());
}

void Peer::learn_dead(core::Pid subject) {
  // snapshot() is O(1): it aliases the current bits, and the mutation
  // below copies-on-write precisely because the snapshot references them.
  // Recovery runs even for a redundant death notice — re-running against
  // an unchanged word finds nothing to push, and keeping the call
  // unconditional pins the pre-seam message schedule bit for bit.
  const util::CowStatus before = view_->snapshot();
  view_->believe_dead(subject.value());
  recover_after_crash(subject, before.read());
}

void Peer::recover_after_crash(core::Pid crashed,
                               const util::StatusWord& before) {
  if (b_ == 0) return;  // nothing to pull from without sibling subtrees
  const util::StatusWord& st = status();
  for (const core::FileId f : store_.inserted_files()) {
    const core::LookupTree tree(st.width(), target_of(f));
    const core::SubtreeView view(tree, b_);
    const std::uint32_t lost_sid = view.subtree_id(crashed);
    if (view.insertion_target(lost_sid, before) != crashed) continue;
    const std::optional<core::Pid> new_holder =
        view.insertion_target(lost_sid, st);
    if (!new_holder.has_value()) continue;  // subtree emptied out
    // Deterministic designation: the holder of the first non-empty sibling
    // subtree after the lost one performs the re-insert; every live node
    // computes the same designation from its status word.
    std::optional<core::Pid> designated;
    for (std::uint32_t step = 1; step < view.subtree_count(); ++step) {
      const std::uint32_t sid =
          (lost_sid + step) % view.subtree_count();
      designated = view.insertion_target(sid, st);
      if (designated.has_value()) break;
    }
    if (designated != pid_) continue;
    const auto info = store_.info(f);
    push_file(f, info.has_value() ? info->version : 0, *new_holder);
  }
}

void Peer::on_file_push(const Message& m) {
  // Idempotent store plus an ack so the sender can stop retransmitting.
  store_.put_inserted(m.file, m.version);
  Message ack;
  ack.request_id = m.request_id;
  ack.type = MsgType::kFilePushAck;
  ack.from = pid_;
  ack.to = m.from;
  ack.requester = m.requester;
  ack.file = m.file;
  ack.ok = true;
  network_->send(ack);
}

void Peer::on_push_ack(const Message& m) {
  pending_pushes_.erase(m.request_id);
}

void Peer::on_reclaim(const Message& m) {
  // The reclaim may race ahead of the joiner's status announcement;
  // learning "X is live" from X's own reclaim message is sound.
  learn_live(m.subject);
  const util::StatusWord& st = status();
  for (const core::FileId f : store_.inserted_files()) {
    const core::LookupTree tree(st.width(), target_of(f));
    const core::SubtreeView view(tree, b_);
    const std::uint32_t my_sid = view.subtree_id(pid_);
    if (view.subtree_id(m.subject) != my_sid) continue;
    if (view.insertion_target(my_sid, st) != m.subject) continue;
    // The joiner is now this subtree's authoritative holder: move the
    // inserted copy over (the paper "copies f back to P(k)"; moving keeps
    // a single authoritative copy per subtree).
    const auto info = store_.info(f);
    push_file(f, info.has_value() ? info->version : 0, m.subject);
    store_.erase(f);
  }
}

void Peer::push_file(core::FileId f, std::uint64_t version, core::Pid to) {
  Message push;
  push.request_id = next_push_id_++;
  push.type = MsgType::kFilePush;
  push.from = pid_;
  push.to = to;
  push.requester = pid_;
  push.subject = target_of(f);
  push.file = f;
  push.version = version;
  push.ok = true;
  // Every kFilePush is membership repair traffic (reclaim, graceful
  // leave, crash recovery) — the chaos bench reports this as repair cost.
  LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->repair_pushes->inc());
  pending_pushes_.insert(push.request_id, PendingPush{push, 0, 0});
  transmit_push(push.request_id);
}

void Peer::transmit_push(std::uint64_t id) {
  PendingPush* pending = pending_pushes_.find(id);
  if (pending == nullptr) return;
  network_->send(pending->msg);
  const int retries = pending->retries;
  const int generation = ++pending->generation;
  const auto expire = [this, id, generation] {
    PendingPush* entry = pending_pushes_.find(id);
    if (entry == nullptr) return;  // acked
    if (entry->generation != generation) return;  // stale timer
    if (entry->retries >= cfg_.push_max_retries) {
      // Out of budget: drop the transfer. The next membership event (or
      // the System-level bookkeeping in tests) re-detects the gap.
      pending_pushes_.erase(id);
      return;
    }
    ++entry->retries;
    LESSLOG_METRICS(
        if (metrics_ != nullptr) metrics_->push_retries->inc());
    transmit_push(id);
  };
  if (cfg_.push_backoff_base <= 1.0) {
    // Fixed retransmit timer (the default): the event queue's FIFO-lane
    // fast path, byte-identical to the historical constant schedule.
    network_->engine().after_fixed(cfg_.push_timeout, expire);
    return;
  }
  // Same capped exponential backoff policy as the client's adaptive
  // retries; a computed delay must take the wheel/heap, not a lane.
  double delay = cfg_.push_timeout;
  for (int i = 0; i < retries && delay < cfg_.push_backoff_cap; ++i) {
    delay *= cfg_.push_backoff_base;
  }
  network_->engine().after(std::min(delay, cfg_.push_backoff_cap), expire);
}

void Peer::reset_window() noexcept {
  served_ = 0;
  forwarded_ = 0;
  store_.reset_access_counts();
}

std::optional<core::Pid> Peer::shed_hottest() {
  // Locally hottest file since the last window reset.
  std::optional<core::FileId> hottest;
  std::uint64_t hottest_count = 0;
  const auto consider = [&](core::FileId f) {
    const auto info = store_.info(f);
    if (info.has_value() && info->access_count > hottest_count) {
      hottest_count = info->access_count;
      hottest = f;
    }
  };
  for (const core::FileId f : store_.inserted_files()) consider(f);
  for (const core::FileId f : store_.replica_files()) consider(f);
  if (!hottest.has_value()) return std::nullopt;

  const util::StatusWord& st = status();
  const core::LookupTree tree(st.width(), target_of(*hottest));
  std::vector<core::Pid>& mine = placed_[*hottest];
  const core::HoldsCopyFn holds = [this, &mine](core::Pid p) {
    if (p == pid_) return true;
    return std::find(mine.begin(), mine.end(), p) != mine.end();
  };

  std::optional<core::Pid> target;
  if (b_ == 0) {
    const std::optional<core::Placement> placement = core::replicate_target(
        tree, pid_, st, holds, network_->engine().rng());
    if (placement.has_value()) target = placement->target;
  } else {
    const core::SubtreeView view(tree, b_);
    target = view.replicate_target(pid_, st, holds,
                                   network_->engine().rng());
  }
  if (!target.has_value()) return std::nullopt;
  mine.push_back(*target);

  Message create;
  create.type = MsgType::kCreateReplica;
  create.from = pid_;
  create.to = *target;
  create.requester = pid_;
  create.subject = target_of(*hottest);
  create.file = *hottest;
  const auto info = store_.info(*hottest);
  create.version = info.has_value() ? info->version : 0;
  create.ok = true;
  network_->send(create);
  return target;
}

void Peer::graceful_leave() {
  util::StatusWord without_me = status();
  without_me.set_dead(pid_.value());
  for (const core::FileId f : store_.inserted_files()) {
    const core::LookupTree tree(without_me.width(), target_of(f));
    const core::SubtreeView view(tree, b_);
    const std::optional<core::Pid> new_holder =
        view.insertion_target(view.subtree_id(pid_), without_me);
    if (!new_holder.has_value()) continue;  // last node of the subtree
    const auto info = store_.info(f);
    push_file(f, info.has_value() ? info->version : 0, *new_holder);
  }
  store_ = core::FileStore{};  // replicas are discarded with the node
}

}  // namespace lesslog::proto
