#include "lesslog/proto/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "lesslog/util/rng.hpp"

namespace lesslog::proto {

Network::Network(sim::Engine& engine, NetworkConfig cfg)
    : engine_(&engine), cfg_(cfg) {
  assert(cfg.base_latency >= 0.0 && cfg.jitter >= 0.0);
  assert(cfg.drop_probability >= 0.0 && cfg.drop_probability <= 1.0);
}

void Network::attach(core::Pid pid, Handler handler) {
  if (handlers_.size() <= pid.value()) {
    handlers_.resize(pid.value() + 1u);
  }
  handlers_[pid.value()] = std::move(handler);
}

void Network::detach(core::Pid pid) {
  if (pid.value() < handlers_.size()) {
    handlers_[pid.value()] = nullptr;
  }
}

void Network::add_sink(obs::DeliverySink& sink) {
  if (std::find(sinks_.begin(), sinks_.end(), &sink) == sinks_.end()) {
    sinks_.push_back(&sink);
  }
}

void Network::remove_sink(obs::DeliverySink& sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), &sink),
               sinks_.end());
}

void Network::notify_peer_event(double time, core::Pid peer, bool live) {
  for (obs::DeliverySink* sink : sinks_) sink->on_peer(time, peer, live);
}

void Network::enable_geography(const Geography& geo) {
  assert(geo.slots > 0 && geo.latency_per_unit >= 0.0);
  geo_ = geo;
  coords_.resize(geo.slots);
  util::Rng rng(geo.seed ^ 0x6E06'12A9ULL);
  for (auto& [x, y] : coords_) {
    x = rng.uniform01();
    y = rng.uniform01();
  }
}

double Network::distance(core::Pid a, core::Pid b) const {
  assert(!coords_.empty());
  assert(a.value() < coords_.size() && b.value() < coords_.size());
  const auto [ax, ay] = coords_[a.value()];
  const auto [bx, by] = coords_[b.value()];
  const double dx = ax - bx;
  const double dy = ay - by;
  return std::sqrt(dx * dx + dy * dy);
}

double Network::link_latency(core::Pid a, core::Pid b) const {
  const double geographic =
      coords_.empty() ? 0.0 : distance(a, b) * geo_.latency_per_unit;
  return cfg_.base_latency + geographic;
}

void Network::send(const Message& m) {
  static_assert(sim::InplaceEvent::stored_inline<DeliveryEvent>(),
                "the per-message delivery event must fit the event "
                "queue's inline buffer (allocation-free wire path)");
  ++messages_sent_;
  DeliveryEvent ev{this, {}};
  encode_into(m, ev.wire);
  bytes_sent_ += static_cast<std::int64_t>(kWireSize);
  LESSLOG_METRICS(if (metrics_ != nullptr) {
    metrics_->out_for(m.type).inc();
    metrics_->bytes_out->add(kWireSize);
  });
  if (cfg_.drop_probability > 0.0 &&
      engine_->rng().bernoulli(cfg_.drop_probability)) {
    ++dropped_;
    LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->dropped->inc());
    return;
  }
  const double latency =
      (coords_.empty() ? cfg_.base_latency : link_latency(m.from, m.to)) +
      (cfg_.jitter > 0.0 ? engine_->rng().uniform01() * cfg_.jitter : 0.0);
  engine_->after(latency, std::move(ev));
}

void Network::deliver(const WireBuffer& wire) {
  const std::optional<Message> delivered = decode(wire);
  assert(delivered.has_value() && "wire corruption is not modelled");
  const std::uint32_t to = delivered->to.value();
  if (to >= handlers_.size() || !handlers_[to]) {
    ++undeliverable_;
    LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->undeliverable->inc());
    return;
  }
  // Sinks observe the datagram at delivery time, before the handler — so
  // a trace's record order matches the order handlers fired in.
  for (obs::DeliverySink* sink : sinks_) {
    sink->on_deliver(engine_->now(), *delivered);
  }
  handlers_[to](*delivered);
}

}  // namespace lesslog::proto
