#include "lesslog/proto/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "lesslog/util/rng.hpp"

namespace lesslog::proto {

void NetworkConfig::validate() const {
  if (std::isnan(base_latency) || base_latency < 0.0) {
    throw std::invalid_argument(
        "NetworkConfig: base_latency must be non-negative");
  }
  if (std::isnan(jitter) || jitter < 0.0) {
    throw std::invalid_argument("NetworkConfig: jitter must be non-negative");
  }
  if (!(drop_probability >= 0.0 && drop_probability <= 1.0)) {
    throw std::invalid_argument(
        "NetworkConfig: drop_probability must be in [0, 1]");
  }
  if (std::isnan(link_stagger) || link_stagger < 0.0) {
    throw std::invalid_argument(
        "NetworkConfig: link_stagger must be non-negative");
  }
}

Network::Network(sim::Engine& engine, NetworkConfig cfg)
    : engine_(&engine), cfg_(cfg) {
  cfg.validate();
}

void Network::attach(core::Pid pid, Handler handler) {
  if (!handler) {  // a null std::function was always undeliverable
    detach(pid);
    return;
  }
  if (boxed_.size() <= pid.value()) {
    boxed_.resize(pid.value() + 1u);
  }
  boxed_[pid.value()] = std::make_unique<Handler>(std::move(handler));
  attach_raw(pid, boxed_[pid.value()].get(),
             [](void* ctx, const Message& m) {
               (*static_cast<Handler*>(ctx))(m);
             });
}

void Network::attach_raw(core::Pid pid, void* ctx, RawHandler fn) {
  if (handlers_.size() <= pid.value()) {
    handlers_.resize(pid.value() + 1u);
  }
  handlers_[pid.value()] = HandlerSlot{ctx, fn};
}

void Network::detach(core::Pid pid) {
  if (pid.value() < handlers_.size()) {
    handlers_[pid.value()] = HandlerSlot{};
  }
  if (pid.value() < boxed_.size()) {
    boxed_[pid.value()].reset();
  }
}

void Network::add_sink(obs::DeliverySink& sink) {
  if (std::find(sinks_.begin(), sinks_.end(), &sink) == sinks_.end()) {
    sinks_.push_back(&sink);
  }
}

void Network::remove_sink(obs::DeliverySink& sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), &sink),
               sinks_.end());
}

void Network::notify_peer_event(double time, core::Pid peer, bool live) {
  for (obs::DeliverySink* sink : sinks_) sink->on_peer(time, peer, live);
}

std::vector<std::pair<double, double>> make_coordinates(
    const Geography& geo) {
  std::vector<std::pair<double, double>> coords(geo.slots);
  util::Rng rng(geo.seed ^ 0x6E06'12A9ULL);
  if (geo.clusters == 0) {
    for (auto& [x, y] : coords) {
      x = rng.uniform01();
      y = rng.uniform01();
    }
    return coords;
  }
  // Clustered placement: PID-contiguous blocks around evenly spaced
  // centers. Two uniform draws per slot either way, and the uniform
  // branch above is untouched — clusters == 0 stays bit-identical to
  // the pre-cluster model.
  const std::uint32_t k = geo.clusters;
  const double two_pi = 2.0 * 3.14159265358979323846;
  std::vector<std::pair<double, double>> centers(k);
  for (std::uint32_t c = 0; c < k; ++c) {
    const double a = two_pi * static_cast<double>(c) /
                     static_cast<double>(k);
    centers[c] = {0.5 + 0.35 * std::cos(a), 0.5 + 0.35 * std::sin(a)};
  }
  const std::uint32_t block = (geo.slots + k - 1u) / k;
  for (std::uint32_t p = 0; p < geo.slots; ++p) {
    const auto [cx, cy] = centers[std::min(p / block, k - 1u)];
    coords[p] = {cx + (rng.uniform01() - 0.5) * 2.0 * geo.cluster_radius,
                 cy + (rng.uniform01() - 0.5) * 2.0 * geo.cluster_radius};
  }
  return coords;
}

void Network::enable_geography(const Geography& geo) {
  assert(geo.slots > 0 && geo.latency_per_unit >= 0.0);
  geo_ = geo;
  coords_ = make_coordinates(geo);
}

double Network::distance(core::Pid a, core::Pid b) const {
  assert(!coords_.empty());
  assert(a.value() < coords_.size() && b.value() < coords_.size());
  const auto [ax, ay] = coords_[a.value()];
  const auto [bx, by] = coords_[b.value()];
  const double dx = ax - bx;
  const double dy = ay - by;
  return std::sqrt(dx * dx + dy * dy);
}

double Network::link_latency(core::Pid a, core::Pid b) const {
  const double geographic =
      coords_.empty() ? 0.0 : distance(a, b) * geo_.latency_per_unit;
  return cfg_.base_latency + geographic;
}

double Network::link_stagger(core::Pid a, core::Pid b) const noexcept {
  if (cfg_.link_stagger == 0.0) return 0.0;
  // SplitMix64 finalizer over the ordered pair: a fixed, well-mixed
  // fraction per directed link, consuming no RNG stream.
  std::uint64_t x = (std::uint64_t{a.value()} << 32) | b.value();
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return cfg_.link_stagger * (static_cast<double>(x >> 11) * 0x1.0p-53);
}

void Network::send(const Message& m) {
  static_assert(sim::InplaceEvent::stored_inline<DeliveryEvent>(),
                "the per-message delivery event must fit the event "
                "queue's inline buffer (allocation-free wire path)");
  ++messages_sent_;
  DeliveryEvent ev{this, {}};
  encode_into(m, ev.wire);
  bytes_sent_ += static_cast<std::int64_t>(kWireSize);
  LESSLOG_METRICS(if (metrics_ != nullptr) {
    metrics_->out_for(m.type).inc();
    metrics_->bytes_out->add(kWireSize);
  });
  if (cfg_.drop_probability > 0.0 &&
      engine_->rng().bernoulli(cfg_.drop_probability)) {
    ++dropped_;
    LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->dropped->inc());
    return;
  }
  const double latency =
      (coords_.empty() ? cfg_.base_latency : link_latency(m.from, m.to)) +
      link_stagger(m.from, m.to) +
      (cfg_.jitter > 0.0 ? engine_->rng().uniform01() * cfg_.jitter : 0.0);
  if (injector_ == nullptr) {
    if (forward_ != nullptr) {
      // Shard-boundary accounting only when a hook is installed (S > 1),
      // so serial and single-shard snapshots stay byte-identical.
      if (forward_(m.to, engine_->now() + latency, ev.wire)) {
        LESSLOG_METRICS(
            if (metrics_ != nullptr) metrics_->cross_shard_msgs->inc());
        return;  // crossed a shard boundary; delivered at the next barrier
      }
      LESSLOG_METRICS(
          if (metrics_ != nullptr) metrics_->intra_shard_msgs->inc());
    }
    if (cfg_.jitter == 0.0 && coords_.empty() && cfg_.link_stagger == 0.0) {
      // Deterministic flat-latency link: every delivery shares the one
      // constant delay, so the O(1) FIFO lane replaces a wheel insertion
      // (and its lazy bucket sort). Same (time, seq) key either way —
      // execution order is identical, only admission cost changes.
      engine_->after_fixed(cfg_.base_latency, std::move(ev));
    } else {
      engine_->after(latency, std::move(ev));
    }
    return;
  }
  send_faulty(m, ev, latency);
}

void Network::deliver_at(double at, const WireBuffer& wire) {
  engine_->at(at, DeliveryEvent{this, wire});
}

void Network::deliver_batch(const double* times, const WireBuffer* wires,
                            std::size_t n) {
  engine_->queue().schedule_batch(
      n, [times](std::size_t i) { return times[i]; },
      [this, wires](std::size_t i, sim::EventFn& slot) {
        slot.emplace(DeliveryEvent{this, wires[i]});
      });
}

void Network::send_faulty(const Message& m, DeliveryEvent& ev,
                          double latency) {
  // The injector pipeline. Every datagram handed to send() terminates as
  // exactly one of: partition_dropped, burst_dropped, corrupted,
  // undeliverable, or delivered — plus `duplicated` extra copies that
  // each terminate the same way. That exhaustiveness is what makes the
  // auditor's counter-reconciliation invariant hold at quiescence.
  if (injector_->partition_blocks(m.from, m.to)) {
    LESSLOG_METRICS(if (metrics_ != nullptr) {
      metrics_->injected_partition_drops->inc();
    });
    return;
  }
  const int copies = injector_->duplicate() ? 2 : 1;
  LESSLOG_METRICS(if (copies > 1 && metrics_ != nullptr) {
    metrics_->injected_duplicates->inc();
  });
  for (int c = 0; c < copies; ++c) {
    if (injector_->burst_drop(m.from, m.to)) {
      LESSLOG_METRICS(if (metrics_ != nullptr) {
        metrics_->injected_burst_drops->inc();
      });
      continue;
    }
    DeliveryEvent copy = ev;
    if (injector_->corrupt(copy.wire)) {
      LESSLOG_METRICS(if (metrics_ != nullptr) {
        metrics_->injected_corruptions->inc();
      });
    }
    const double spike = injector_->delay_spike();
    LESSLOG_METRICS(if (spike > 0.0 && metrics_ != nullptr) {
      metrics_->injected_delay_spikes->inc();
    });
    // The first copy reuses send()'s latency draw (so an empty plan's
    // timing would be unchanged); a duplicate gets its own jitter from
    // the injector's stream to land at a distinct time.
    const double base =
        (coords_.empty() ? cfg_.base_latency : link_latency(m.from, m.to)) +
        link_stagger(m.from, m.to);
    const double copy_latency =
        (c == 0 ? latency : base + injector_->jitter(cfg_.jitter)) + spike;
    if (forward_ != nullptr) {
      if (forward_(m.to, engine_->now() + copy_latency, copy.wire)) {
        LESSLOG_METRICS(
            if (metrics_ != nullptr) metrics_->cross_shard_msgs->inc());
        continue;
      }
      LESSLOG_METRICS(
          if (metrics_ != nullptr) metrics_->intra_shard_msgs->inc());
    }
    engine_->after(copy_latency, std::move(copy));
  }
}

void Network::install_fault_plan(const FaultPlan& plan) {
  plan.validate();
  injector_ = std::make_unique<FaultInjector>(plan);
  FaultInjector* inj = injector_.get();
  const double now = engine_->now();
  for (std::size_t i = 0; i < plan.rules.size(); ++i) {
    const FaultRule& r = plan.rules[i];
    if (r.start <= now) {
      inj->activate(i);
    } else {
      engine_->at(r.start, [inj, i] { inj->activate(i); });
    }
    // Rules healing at infinity never deactivate; scheduling an event at
    // t = inf would keep the engine from ever draining.
    if (std::isfinite(r.stop)) {
      engine_->at(r.stop, [inj, i] { inj->deactivate(i); });
    }
  }
}

void Network::deliver(const WireBuffer& wire) {
  const std::optional<Message> delivered = decode(wire);
  if (!delivered.has_value()) {
    // Corrupted in flight: the wire image no longer decodes. Counted and
    // dropped — the receiver never sees it (the client's timeout/retry
    // machinery recovers, same as a loss).
    ++corrupted_;
    LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->corrupted->inc());
    return;
  }
  const std::uint32_t to = delivered->to.value();
  if (to >= handlers_.size() || handlers_[to].fn == nullptr) {
    ++undeliverable_;
    LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->undeliverable->inc());
    return;
  }
  ++delivered_;
  LESSLOG_METRICS(if (metrics_ != nullptr) metrics_->delivered->inc());
  // Sinks observe the datagram at delivery time, before the handler — so
  // a trace's record order matches the order handlers fired in.
  for (obs::DeliverySink* sink : sinks_) {
    sink->on_deliver(engine_->now(), *delivered);
  }
  const HandlerSlot h = handlers_[to];
  h.fn(h.ctx, *delivered);
}

}  // namespace lesslog::proto
