#include "lesslog/proto/sharded_swarm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "lesslog/core/replication.hpp"

namespace lesslog::proto {

namespace {

/// Occupancy-grid resolution for the pairwise distance floors. Coarser
/// cells only loosen the bound (still conservative); 32 x 32 keeps the
/// worst-case cell-pair scan trivial while resolving blobs a few
/// percent of the unit square wide.
constexpr int kGrid = 32;

/// Conservative lower bound on the distance between any point of cell a
/// and any point of cell b: shrink the axis gaps by one full cell (the
/// points may sit anywhere inside), so touching or adjacent cells bound
/// to zero.
double cell_pair_floor(int ax, int ay, int bx, int by) {
  const double dx =
      static_cast<double>(std::max(0, std::abs(ax - bx) - 1)) / kGrid;
  const double dy =
      static_cast<double>(std::max(0, std::abs(ay - by) - 1)) / kGrid;
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

ShardedSwarm::Plan ShardedSwarm::make_plan(const Config& cfg) {
  const std::uint32_t space = util::space_size(cfg.m);
  if (cfg.shards == 0 || cfg.shards > space) {
    throw std::invalid_argument("ShardedSwarm: shards must be in [1, 2^m]");
  }
  Plan plan;
  plan.map = ShardMap(cfg.shard_map, cfg.m, cfg.shards);
  plan.geo = cfg.geo;
  if (plan.geo.has_value() && plan.geo->slots == 0) {
    plan.geo->slots = space;
  }
  const std::size_t n = cfg.shards;
  const double base = cfg.net.base_latency;
  plan.pair.assign(n * n, base);
  if (n > 1 && plan.geo.has_value() && plan.geo->latency_per_unit > 0.0) {
    // Distance floor between shard regions, over a coarse occupancy
    // grid. Every slot counts (not just the initially-live ones): any
    // PID can join later and send, so the bound must cover the whole
    // partition.
    assert(plan.geo->slots >= space &&
           "geography must cover the whole ID space");
    const auto coords = make_coordinates(*plan.geo);
    std::vector<std::vector<std::uint16_t>> cells(n);
    {
      std::vector<std::vector<bool>> occupied(
          n, std::vector<bool>(kGrid * kGrid, false));
      for (std::uint32_t p = 0; p < space; ++p) {
        const auto [x, y] = coords[p];
        const int cx = std::clamp(static_cast<int>(x * kGrid), 0, kGrid - 1);
        const int cy = std::clamp(static_cast<int>(y * kGrid), 0, kGrid - 1);
        occupied[plan.map.shard_of(core::Pid{p})]
                [static_cast<std::size_t>(cy * kGrid + cx)] = true;
      }
      for (std::size_t s = 0; s < n; ++s) {
        for (std::uint32_t c = 0; c < kGrid * kGrid; ++c) {
          if (occupied[s][c]) {
            cells[s].push_back(static_cast<std::uint16_t>(c));
          }
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        double dist = std::numeric_limits<double>::infinity();
        for (const std::uint16_t a : cells[i]) {
          const int ax = a % kGrid;
          const int ay = a / kGrid;
          for (const std::uint16_t b : cells[j]) {
            dist = std::min(
                dist, cell_pair_floor(ax, ay, b % kGrid, b / kGrid));
          }
          if (dist == 0.0) break;  // can't get lower; skip the rest
        }
        const double bound = base + plan.geo->latency_per_unit * dist;
        plan.pair[i * n + j] = bound;
        plan.pair[j * n + i] = bound;
      }
    }
  }
  plan.floor = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) plan.floor = std::min(plan.floor, plan.pair[i * n + j]);
    }
  }
  if (n == 1) plan.floor = base;
  if (n > 1 && !(plan.floor > 0.0)) {
    throw std::invalid_argument(
        "ShardedSwarm: shards > 1 requires a strictly positive pairwise "
        "cross-shard latency floor (the adaptive lookahead): set "
        "base_latency > 0, or give the shards geographically disjoint "
        "regions (clustered geography under the range map); with this "
        "configuration some shard pair's latency lower bound is zero, so "
        "no conservative parallel window exists");
  }
  return plan;
}

ShardedSwarm::ShardedSwarm(Config cfg)
    : ShardedSwarm(cfg, make_plan(cfg)) {}

ShardedSwarm::ShardedSwarm(Config cfg, Plan plan)
    : cfg_(cfg),
      status_(util::StatusWord(cfg.m)),
      engines_(cfg.shards, cfg.seed,
               cfg.shards > 1 ? plan.floor : cfg.net.base_latency),
      router_(plan.map) {
  assert(cfg_.nodes <= util::space_size(cfg_.m));
  if (cfg_.shards > 1) {
    engines_.set_pair_lookahead(plan.pair);
  }
  shards_.reserve(cfg_.shards);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    shards_.push_back(
        std::make_unique<Shard>(engines_.shard(s), cfg_.net));
#if LESSLOG_METRICS_ENABLED
    shards_[s]->network.set_metrics(&shards_[s]->metrics);
    shards_[s]->network.add_sink(shards_[s]->sink);
#endif
    if (plan.geo.has_value()) {
      shards_[s]->network.enable_geography(*plan.geo);
    }
  }
  if (cfg_.shards > 1) {
    // Cross-shard interception: the sender's shard ran the full latency
    // and fault pipeline already; only the arrival crosses over.
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      shards_[s]->network.set_forward(
          [this, s](core::Pid to, double at, const WireBuffer& wire) {
            const std::size_t dest = router_.shard_of(to);
            if (dest == s) return false;
            router_.post(s, dest, at, wire);
            return true;
          });
    }
    engines_.set_drain([this](std::size_t s) {
      router_.drain_into(s, shards_[s]->network);
    });
  }
  for (std::uint32_t p = 0; p < cfg_.nodes; ++p) {
    status_.mutate().set_live(p);  // sole owner here: never clones
  }
  peers_.resize(util::space_size(cfg_.m));
  clients_.resize(util::space_size(cfg_.m));
  auto_replicas_by_shard_.assign(cfg_.shards, 0);
  auto_removals_by_shard_.assign(cfg_.shards, 0);
  // One shared copy-on-write snapshot for the whole construction batch:
  // at m=16 this replaces 2^16 distinct 8 KiB status words (512 MiB) with
  // a single word that peers alias until their views diverge.
  for (std::uint32_t p = 0; p < cfg_.nodes; ++p) {
    make_peer(core::Pid{p}, status_.snapshot());
  }
}

void ShardedSwarm::make_peer(core::Pid p, util::CowStatus view) {
  Shard& sh = home(p);
  peers_[p.value()] = std::make_unique<Peer>(p, cfg_.b, std::move(view),
                                             sh.network, cfg_.peer);
  peers_[p.value()]->set_metrics(&sh.metrics);
  peers_[p.value()]->attach();
  clients_[p.value()] =
      std::make_unique<Client>(*peers_[p.value()], sh.network, cfg_.client);
  clients_[p.value()]->set_metrics(&sh.metrics);
}

std::int64_t ShardedSwarm::settle() { return engines_.run_all_windows(); }

std::int64_t ShardedSwarm::run_until(double t) {
  return engines_.run_until_windows(t);
}

void ShardedSwarm::insert(core::FileId file, core::Pid r,
                          core::Pid issuer) {
  Peer& from = peer(issuer);
  const core::LookupTree tree(cfg_.m, r);
  const core::SubtreeView view(tree, cfg_.b);
  for (const core::Pid holder : view.insertion_targets(from.status())) {
    client(issuer).insert(file, r, holder, nullptr);
  }
}

core::FileId ShardedSwarm::insert_named(std::uint64_t key,
                                        core::Pid issuer) {
  const core::FileId file{key};
  insert(file, peer(issuer).target_of(file), issuer);
  return file;
}

void ShardedSwarm::get(core::FileId file, core::Pid r, core::Pid at,
                       Client::GetCallback done) {
  client(at).get(file, r, std::move(done));
}

void ShardedSwarm::update(core::FileId file, core::Pid r,
                          std::uint64_t version, core::Pid issuer) {
  Peer& from = peer(issuer);
  const core::LookupTree tree(cfg_.m, r);
  const core::SubtreeView view(tree, cfg_.b);
  for (std::uint32_t t = 0; t < view.subtree_count(); ++t) {
    const std::optional<core::Pid> origin =
        view.insertion_target(t, from.status());
    if (!origin.has_value()) continue;
    Message push;
    push.type = MsgType::kUpdatePush;
    push.from = issuer;
    push.to = *origin;
    push.requester = issuer;
    push.subject = r;
    push.file = file;
    push.version = version;
    home(issuer).network.send(push);
  }
}

std::optional<core::Pid> ShardedSwarm::replicate(
    core::FileId file, core::Pid r, core::Pid overloaded,
    const core::HoldsCopyFn& holds) {
  // Mirrors Swarm::replicate, with the holder's shard supplying both the
  // randomness and the wire — so with S = 1 the draw sequence and the
  // send are byte-identical to the serial helper.
  Peer& at = peer(overloaded);
  const core::LookupTree tree(cfg_.m, r);
  util::Rng& rng = engines_.shard(shard_of(overloaded)).rng();
  std::optional<core::Pid> target;
  if (cfg_.b == 0) {
    const std::optional<core::Placement> placement =
        core::replicate_target(tree, overloaded, at.status(), holds, rng);
    if (placement.has_value()) target = placement->target;
  } else {
    const core::SubtreeView view(tree, cfg_.b);
    target = view.replicate_target(overloaded, at.status(), holds, rng);
  }
  if (!target.has_value()) return std::nullopt;
  Message create;
  create.type = MsgType::kCreateReplica;
  create.from = overloaded;
  create.to = *target;
  create.requester = overloaded;
  create.subject = r;
  create.file = file;
  const auto info = at.store().info(file);
  create.version = info.has_value() ? info->version : 0;
  home(overloaded).network.send(create);
  return target;
}

core::Pid ShardedSwarm::join(std::optional<core::Pid> requested) {
  const core::Pid p =
      requested.value_or(core::Pid{status_.read().first_dead()});
  assert(!status_.read().is_live(p.value()));
  status_.mutate().set_live(p.value());
  if (peers_[p.value()]) {
    peers_[p.value()]->rejoin(status_.snapshot());
  } else {
    make_peer(p, status_.snapshot());
  }
  Shard& sh = home(p);
  sh.network.notify_peer_event(engines_.shard(shard_of(p)).now(), p,
                               /*live=*/true);
  broadcast_status(p, /*live=*/true);
  for (std::uint32_t q = 0; q < util::space_size(cfg_.m); ++q) {
    if (q == p.value() || !status_.read().is_live(q)) continue;
    Message reclaim;
    reclaim.type = MsgType::kReclaim;
    reclaim.from = p;
    reclaim.to = core::Pid{q};
    reclaim.requester = p;
    reclaim.subject = p;
    sh.network.send(reclaim);
  }
  return p;
}

void ShardedSwarm::depart(core::Pid p) {
  assert(status_.read().is_live(p.value()));
  peers_[p.value()]->graceful_leave();
  broadcast_status(p, /*live=*/false);
  status_.mutate().set_dead(p.value());
  peers_[p.value()]->detach();
  home(p).network.notify_peer_event(engines_.shard(shard_of(p)).now(), p,
                                    /*live=*/false);
}

void ShardedSwarm::crash(core::Pid p) {
  assert(status_.read().is_live(p.value()));
  peers_[p.value()]->detach();
  status_.mutate().set_dead(p.value());
  broadcast_status(p, /*live=*/false);
  home(p).network.notify_peer_event(engines_.shard(shard_of(p)).now(), p,
                                    /*live=*/false);
}

void ShardedSwarm::restart(core::Pid p) {
  assert(!status_.read().is_live(p.value()));
  join(p);
}

void ShardedSwarm::reannounce() {
  for (std::uint32_t p = 0; p < util::space_size(cfg_.m); ++p) {
    if (!peers_[p]) continue;
    broadcast_status(core::Pid{p}, status_.read().is_live(p));
  }
}

void ShardedSwarm::crash_unannounced(core::Pid p) {
  assert(status_.read().is_live(p.value()));
  peers_[p.value()]->detach();
  status_.mutate().set_dead(p.value());
  home(p).network.notify_peer_event(engines_.shard(shard_of(p)).now(), p,
                                    /*live=*/false);
}

void ShardedSwarm::crash_silent(core::Pid p) { crash_unannounced(p); }

void ShardedSwarm::broadcast_status(core::Pid about, bool live) {
  // Announcements originate at `about`, so they ride its shard's network
  // (and draw jitter from that shard's RNG stream).
  Network& net = home(about).network;
  for (std::uint32_t q = 0; q < util::space_size(cfg_.m); ++q) {
    if (q == about.value() || !status_.read().is_live(q)) continue;
    Message announce;
    announce.type = MsgType::kStatusAnnounce;
    announce.from = about;
    announce.to = core::Pid{q};
    announce.subject = about;
    announce.ok = live;
    net.send(announce);
  }
}

void ShardedSwarm::enable_auto_replication(double capacity, double window,
                                           double stop_at,
                                           double removal_threshold) {
  assert(capacity > 0.0 && window > 0.0 && removal_threshold >= 0.0);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    engines_.shard(s).after(
        window, [this, s, capacity, window, stop_at, removal_threshold] {
          auto_replication_tick(s, capacity, window, stop_at,
                                removal_threshold);
        });
  }
}

void ShardedSwarm::auto_replication_tick(std::size_t s, double capacity,
                                         double window, double stop_at,
                                         double removal_threshold) {
  // One shard's slice of the serial controller tick: runs on shard s's
  // engine and touches only shard-local peers (their counters, stores,
  // networks) plus the read-only ground-truth status word — so S ticks
  // can run concurrently inside a window without a race. PID order
  // within the shard matches the serial scan, making S = 1 identical to
  // Swarm::auto_replication_tick.
  const auto budget = static_cast<std::int64_t>(capacity * window);
  const auto cold =
      static_cast<std::uint64_t>(removal_threshold * window);
  for (std::uint32_t p = 0; p < util::space_size(cfg_.m); ++p) {
    if (router_.shard_of(core::Pid{p}) != s) continue;
    if (!status_.read().is_live(p) || !peers_[p]) continue;
    Peer& peer_ref = *peers_[p];
    if (peer_ref.served() > budget) {
      if (peer_ref.shed_hottest().has_value()) {
        ++auto_replicas_by_shard_[s];
      }
    } else if (cold > 0) {
      auto_removals_by_shard_[s] += static_cast<std::int64_t>(
          peer_ref.store().prune_cold_replicas(cold).size());
    }
    peer_ref.reset_window();
  }
  if (engines_.shard(s).now() + window <= stop_at) {
    engines_.shard(s).after(
        window, [this, s, capacity, window, stop_at, removal_threshold] {
          auto_replication_tick(s, capacity, window, stop_at,
                                removal_threshold);
        });
  }
}

std::int64_t ShardedSwarm::auto_replicas() const noexcept {
  std::int64_t total = 0;
  for (const std::int64_t v : auto_replicas_by_shard_) total += v;
  return total;
}

std::int64_t ShardedSwarm::auto_removals() const noexcept {
  std::int64_t total = 0;
  for (const std::int64_t v : auto_removals_by_shard_) total += v;
  return total;
}

void ShardedSwarm::enable_metrics_sampling(double interval,
                                           double stop_at) {
  assert(samplers_.empty() && "sampling already enabled");
  samplers_.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    samplers_.push_back(std::make_unique<obs::Sampler>(
        engines_.shard(s), shards_[s]->registry, interval, stop_at,
        [this, s] {
          // Shard-local gauge refresh (runs on shard s's worker):
          // queue_depth is this shard's queue; live_peers comes from the
          // read-only ground truth and is set by shard 0 alone (merged
          // gauges sum); max_served is this shard's hottest peer.
          Shard& sh = *shards_[s];
          sh.metrics.queue_depth->set(
              static_cast<double>(engines_.shard(s).queue().size()));
          if (s == 0) {
            sh.metrics.live_peers->set(
                static_cast<double>(status_.read().live_count()));
          }
          std::int64_t hottest = 0;
          for (std::uint32_t p = 0; p < util::space_size(cfg_.m); ++p) {
            if (router_.shard_of(core::Pid{p}) != s) continue;
            if (status_.read().is_live(p) && peers_[p]) {
              hottest = std::max(hottest, peers_[p]->served());
            }
          }
          sh.metrics.max_served->set(static_cast<double>(hottest));
        }));
    samplers_.back()->start();
  }
}

const obs::TimeSeries& ShardedSwarm::metrics_series() {
  merged_series_.samples.clear();
  if (samplers_.empty()) return merged_series_;
  const std::size_t count = samplers_[0]->series().size();
  merged_series_.samples.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    // Sample k of shard 0 (keeps its capture time) absorbs sample k of
    // every other shard — all samplers tick at the same simulated
    // times, so index k is one swarm-wide instant.
    obs::Snapshot merged = samplers_[0]->series().samples[k];
    for (std::size_t s = 1; s < samplers_.size(); ++s) {
      assert(samplers_[s]->series().size() == count);
      merged.merge_from(samplers_[s]->series().samples[k]);
    }
    merged_series_.samples.push_back(std::move(merged));
  }
  return merged_series_;
}

std::int64_t ShardedSwarm::total_faults() const {
  std::int64_t total = 0;
  for (const auto& c : clients_) {
    if (c) total += c->faults();
  }
  return total;
}

std::vector<double> ShardedSwarm::all_latencies() const {
  std::vector<double> out;
  for (const auto& c : clients_) {
    if (!c) continue;
    out.insert(out.end(), c->latencies().begin(), c->latencies().end());
  }
  return out;
}

ReliabilityLedger ShardedSwarm::reliability_ledger() const {
  ReliabilityLedger total;
  for (const auto& c : clients_) {
    if (c) total += c->ledger();
  }
  for (const auto& p : peers_) {
    if (p) total.busy_shed += p->busy_shed();
  }
  return total;
}

std::int64_t ShardedSwarm::messages_sent() const noexcept {
  std::int64_t total = 0;
  for (const auto& s : shards_) total += s->network.messages_sent();
  return total;
}

std::int64_t ShardedSwarm::bytes_sent() const noexcept {
  std::int64_t total = 0;
  for (const auto& s : shards_) total += s->network.bytes_sent();
  return total;
}

std::int64_t ShardedSwarm::delivered() const noexcept {
  std::int64_t total = 0;
  for (const auto& s : shards_) total += s->network.delivered();
  return total;
}

std::int64_t ShardedSwarm::undeliverable() const noexcept {
  std::int64_t total = 0;
  for (const auto& s : shards_) total += s->network.undeliverable();
  return total;
}

std::int64_t ShardedSwarm::dropped() const noexcept {
  std::int64_t total = 0;
  for (const auto& s : shards_) total += s->network.dropped();
  return total;
}

std::int64_t ShardedSwarm::corrupted() const noexcept {
  std::int64_t total = 0;
  for (const auto& s : shards_) total += s->network.corrupted();
  return total;
}

double ShardedSwarm::cross_shard_fraction() const noexcept {
#if LESSLOG_METRICS_ENABLED
  double cross = 0.0;
  double intra = 0.0;
  for (const auto& s : shards_) {
    cross += static_cast<double>(s->metrics.cross_shard_msgs->value());
    intra += static_cast<double>(s->metrics.intra_shard_msgs->value());
  }
  return cross + intra > 0.0 ? cross / (cross + intra) : 0.0;
#else
  return 0.0;
#endif
}

obs::Snapshot ShardedSwarm::metrics_snapshot(double time) const {
  obs::Snapshot merged;
  merged.time = time;
  for (const auto& s : shards_) {
    merged.merge_from(s->registry.snapshot(time));
  }
  return merged;
}

}  // namespace lesslog::proto
