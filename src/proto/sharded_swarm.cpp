#include "lesslog/proto/sharded_swarm.hpp"

#include <cassert>
#include <stdexcept>

#include "lesslog/core/replication.hpp"

namespace lesslog::proto {

namespace {

/// PID-range partition block: ceil(2^m / S), so shard_of(p) = p / block
/// maps the whole ID space onto [0, S) with contiguous ranges.
std::uint32_t block_for(int m, std::size_t shards) {
  const std::uint32_t space = util::space_size(m);
  if (shards == 0 || shards > space) {
    throw std::invalid_argument(
        "ShardedSwarm: shards must be in [1, 2^m]");
  }
  return static_cast<std::uint32_t>(
      (space + shards - 1) / static_cast<std::uint32_t>(shards));
}

}  // namespace

ShardedSwarm::ShardedSwarm(Config cfg)
    : cfg_(cfg),
      status_(cfg.m),
      engines_(cfg.shards, cfg.seed, cfg.net.base_latency),
      router_(cfg.shards, block_for(cfg.m, cfg.shards)) {
  assert(cfg_.nodes <= util::space_size(cfg_.m));
  shards_.reserve(cfg_.shards);
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    shards_.push_back(
        std::make_unique<Shard>(engines_.shard(s), cfg_.net));
#if LESSLOG_METRICS_ENABLED
    shards_[s]->network.set_metrics(&shards_[s]->metrics);
    shards_[s]->network.add_sink(shards_[s]->sink);
#endif
  }
  if (cfg_.shards > 1) {
    // Cross-shard interception: the sender's shard ran the full latency
    // and fault pipeline already; only the arrival crosses over.
    for (std::size_t s = 0; s < cfg_.shards; ++s) {
      shards_[s]->network.set_forward(
          [this, s](core::Pid to, double at, const WireBuffer& wire) {
            const std::size_t dest = router_.shard_of(to);
            if (dest == s) return false;
            router_.post(s, dest, at, wire);
            return true;
          });
    }
    engines_.set_drain([this](std::size_t s) {
      router_.drain_into(s, shards_[s]->network);
    });
  }
  for (std::uint32_t p = 0; p < cfg_.nodes; ++p) status_.set_live(p);
  peers_.resize(util::space_size(cfg_.m));
  clients_.resize(util::space_size(cfg_.m));
  // One shared copy-on-write snapshot for the whole construction batch:
  // at m=16 this replaces 2^16 distinct 8 KiB status words (512 MiB) with
  // a single word that peers alias until their views diverge.
  const auto initial_view = std::make_shared<util::StatusWord>(status_);
  for (std::uint32_t p = 0; p < cfg_.nodes; ++p) {
    make_peer(core::Pid{p}, util::CowStatus(initial_view));
  }
}

void ShardedSwarm::make_peer(core::Pid p, util::CowStatus view) {
  Shard& sh = home(p);
  peers_[p.value()] =
      std::make_unique<Peer>(p, cfg_.b, std::move(view), sh.network);
  peers_[p.value()]->set_metrics(&sh.metrics);
  peers_[p.value()]->attach();
  clients_[p.value()] =
      std::make_unique<Client>(*peers_[p.value()], sh.network, cfg_.client);
  clients_[p.value()]->set_metrics(&sh.metrics);
}

std::int64_t ShardedSwarm::settle() { return engines_.run_all_windows(); }

void ShardedSwarm::insert(core::FileId file, core::Pid r,
                          core::Pid issuer) {
  Peer& from = peer(issuer);
  const core::LookupTree tree(cfg_.m, r);
  const core::SubtreeView view(tree, cfg_.b);
  for (const core::Pid holder : view.insertion_targets(from.status())) {
    client(issuer).insert(file, r, holder, nullptr);
  }
}

core::FileId ShardedSwarm::insert_named(std::uint64_t key,
                                        core::Pid issuer) {
  const core::FileId file{key};
  insert(file, peer(issuer).target_of(file), issuer);
  return file;
}

void ShardedSwarm::get(core::FileId file, core::Pid r, core::Pid at,
                       Client::GetCallback done) {
  client(at).get(file, r, std::move(done));
}

void ShardedSwarm::update(core::FileId file, core::Pid r,
                          std::uint64_t version, core::Pid issuer) {
  Peer& from = peer(issuer);
  const core::LookupTree tree(cfg_.m, r);
  const core::SubtreeView view(tree, cfg_.b);
  for (std::uint32_t t = 0; t < view.subtree_count(); ++t) {
    const std::optional<core::Pid> origin =
        view.insertion_target(t, from.status());
    if (!origin.has_value()) continue;
    Message push;
    push.type = MsgType::kUpdatePush;
    push.from = issuer;
    push.to = *origin;
    push.requester = issuer;
    push.subject = r;
    push.file = file;
    push.version = version;
    home(issuer).network.send(push);
  }
}

core::Pid ShardedSwarm::join(std::optional<core::Pid> requested) {
  const core::Pid p = requested.value_or(core::Pid{status_.first_dead()});
  assert(!status_.is_live(p.value()));
  status_.set_live(p.value());
  if (peers_[p.value()]) {
    peers_[p.value()]->rejoin(status_);
  } else {
    make_peer(p, util::CowStatus(status_));
  }
  Shard& sh = home(p);
  sh.network.notify_peer_event(engines_.shard(shard_of(p)).now(), p,
                               /*live=*/true);
  broadcast_status(p, /*live=*/true);
  for (std::uint32_t q = 0; q < util::space_size(cfg_.m); ++q) {
    if (q == p.value() || !status_.is_live(q)) continue;
    Message reclaim;
    reclaim.type = MsgType::kReclaim;
    reclaim.from = p;
    reclaim.to = core::Pid{q};
    reclaim.requester = p;
    reclaim.subject = p;
    sh.network.send(reclaim);
  }
  return p;
}

void ShardedSwarm::depart(core::Pid p) {
  assert(status_.is_live(p.value()));
  peers_[p.value()]->graceful_leave();
  broadcast_status(p, /*live=*/false);
  status_.set_dead(p.value());
  peers_[p.value()]->detach();
  home(p).network.notify_peer_event(engines_.shard(shard_of(p)).now(), p,
                                    /*live=*/false);
}

void ShardedSwarm::crash(core::Pid p) {
  assert(status_.is_live(p.value()));
  peers_[p.value()]->detach();
  status_.set_dead(p.value());
  broadcast_status(p, /*live=*/false);
  home(p).network.notify_peer_event(engines_.shard(shard_of(p)).now(), p,
                                    /*live=*/false);
}

void ShardedSwarm::restart(core::Pid p) {
  assert(!status_.is_live(p.value()));
  join(p);
}

void ShardedSwarm::reannounce() {
  for (std::uint32_t p = 0; p < util::space_size(cfg_.m); ++p) {
    if (!peers_[p]) continue;
    broadcast_status(core::Pid{p}, status_.is_live(p));
  }
}

void ShardedSwarm::crash_silent(core::Pid p) {
  assert(status_.is_live(p.value()));
  peers_[p.value()]->detach();
  status_.set_dead(p.value());
  home(p).network.notify_peer_event(engines_.shard(shard_of(p)).now(), p,
                                    /*live=*/false);
}

void ShardedSwarm::broadcast_status(core::Pid about, bool live) {
  // Announcements originate at `about`, so they ride its shard's network
  // (and draw jitter from that shard's RNG stream).
  Network& net = home(about).network;
  for (std::uint32_t q = 0; q < util::space_size(cfg_.m); ++q) {
    if (q == about.value() || !status_.is_live(q)) continue;
    Message announce;
    announce.type = MsgType::kStatusAnnounce;
    announce.from = about;
    announce.to = core::Pid{q};
    announce.subject = about;
    announce.ok = live;
    net.send(announce);
  }
}

std::int64_t ShardedSwarm::total_faults() const {
  std::int64_t total = 0;
  for (const auto& c : clients_) {
    if (c) total += c->faults();
  }
  return total;
}

std::vector<double> ShardedSwarm::all_latencies() const {
  std::vector<double> out;
  for (const auto& c : clients_) {
    if (!c) continue;
    out.insert(out.end(), c->latencies().begin(), c->latencies().end());
  }
  return out;
}

std::int64_t ShardedSwarm::messages_sent() const noexcept {
  std::int64_t total = 0;
  for (const auto& s : shards_) total += s->network.messages_sent();
  return total;
}

std::int64_t ShardedSwarm::bytes_sent() const noexcept {
  std::int64_t total = 0;
  for (const auto& s : shards_) total += s->network.bytes_sent();
  return total;
}

std::int64_t ShardedSwarm::delivered() const noexcept {
  std::int64_t total = 0;
  for (const auto& s : shards_) total += s->network.delivered();
  return total;
}

std::int64_t ShardedSwarm::undeliverable() const noexcept {
  std::int64_t total = 0;
  for (const auto& s : shards_) total += s->network.undeliverable();
  return total;
}

std::int64_t ShardedSwarm::dropped() const noexcept {
  std::int64_t total = 0;
  for (const auto& s : shards_) total += s->network.dropped();
  return total;
}

std::int64_t ShardedSwarm::corrupted() const noexcept {
  std::int64_t total = 0;
  for (const auto& s : shards_) total += s->network.corrupted();
  return total;
}

obs::Snapshot ShardedSwarm::metrics_snapshot(double time) const {
  obs::Snapshot merged;
  for (const auto& s : shards_) {
    merged.merge_from(s->registry.snapshot(time));
  }
  return merged;
}

}  // namespace lesslog::proto
