#include "lesslog/proto/fault.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

namespace lesslog::proto {

namespace {

[[nodiscard]] bool valid_probability(double p) noexcept {
  return p >= 0.0 && p <= 1.0;  // rejects NaN too
}

[[nodiscard]] std::uint64_t link_key(core::Pid from, core::Pid to) noexcept {
  return (std::uint64_t{from.value()} << 30) | to.value();
}

}  // namespace

const char* fault_kind_name(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::kBurstLoss: return "burst_loss";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kDelaySpike: return "delay_spike";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kPartition: return "partition";
  }
  return "???";
}

FaultRule FaultRule::burst_loss(double start, double stop,
                                double p_good_to_bad, double p_bad_to_good,
                                double loss_bad, double loss_good) {
  FaultRule r;
  r.kind = FaultKind::kBurstLoss;
  r.start = start;
  r.stop = stop;
  r.p_good_to_bad = p_good_to_bad;
  r.p_bad_to_good = p_bad_to_good;
  r.loss_bad = loss_bad;
  r.loss_good = loss_good;
  return r;
}

FaultRule FaultRule::duplicate(double start, double stop,
                               double probability) {
  FaultRule r;
  r.kind = FaultKind::kDuplicate;
  r.start = start;
  r.stop = stop;
  r.probability = probability;
  return r;
}

FaultRule FaultRule::delay_spike(double start, double stop,
                                 double probability, double extra_delay) {
  FaultRule r;
  r.kind = FaultKind::kDelaySpike;
  r.start = start;
  r.stop = stop;
  r.probability = probability;
  r.extra_delay = extra_delay;
  return r;
}

FaultRule FaultRule::corrupt(double start, double stop, double probability) {
  FaultRule r;
  r.kind = FaultKind::kCorrupt;
  r.start = start;
  r.stop = stop;
  r.probability = probability;
  return r;
}

FaultRule FaultRule::partition(double start, double stop,
                               std::vector<std::uint32_t> group) {
  FaultRule r;
  r.kind = FaultKind::kPartition;
  r.start = start;
  r.stop = stop;
  r.group = std::move(group);
  return r;
}

void FaultPlan::validate() const {
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const FaultRule& r = rules[i];
    const auto fail = [&](const std::string& why) {
      throw std::invalid_argument("FaultPlan rule " + std::to_string(i) +
                                  " (" + fault_kind_name(r.kind) +
                                  "): " + why);
    };
    if (std::isnan(r.start) || r.start < 0.0) {
      fail("start must be a non-negative time");
    }
    if (std::isnan(r.stop) || r.stop <= r.start) {
      fail("stop must be after start");
    }
    switch (r.kind) {
      case FaultKind::kBurstLoss:
        if (!valid_probability(r.p_good_to_bad) ||
            !valid_probability(r.p_bad_to_good)) {
          fail("transition probabilities must be in [0, 1]");
        }
        if (!valid_probability(r.loss_good) ||
            !valid_probability(r.loss_bad)) {
          fail("loss rates must be in [0, 1]");
        }
        break;
      case FaultKind::kDuplicate:
      case FaultKind::kCorrupt:
        if (!valid_probability(r.probability)) {
          fail("probability must be in [0, 1]");
        }
        break;
      case FaultKind::kDelaySpike:
        if (!valid_probability(r.probability)) {
          fail("probability must be in [0, 1]");
        }
        if (std::isnan(r.extra_delay) || r.extra_delay <= 0.0 ||
            std::isinf(r.extra_delay)) {
          fail("extra_delay must be a positive finite time");
        }
        break;
      case FaultKind::kPartition:
        if (r.group.empty()) fail("partition group must be non-empty");
        break;
    }
  }
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      rng_(plan_.seed ^ 0xC4A05'F417ULL),
      active_(plan_.rules.size(), false),
      link_state_(plan_.rules.size()),
      generation_(plan_.rules.size(), 0) {
  // Partition membership tests binary-search the group.
  for (FaultRule& r : plan_.rules) {
    if (r.kind == FaultKind::kPartition) {
      std::sort(r.group.begin(), r.group.end());
    }
  }
}

void FaultInjector::activate(std::size_t rule_index) {
  assert(rule_index < active_.size());
  if (!active_[rule_index]) {
    active_[rule_index] = true;
    ++active_count_;
    // Each opening of the window is a new generation: chains seeded under
    // it never replay a previous window's streams.
    ++generation_[rule_index];
  }
}

void FaultInjector::deactivate(std::size_t rule_index) {
  assert(rule_index < active_.size());
  if (active_[rule_index]) {
    active_[rule_index] = false;
    --active_count_;
    // A healed burst window forgets its link states: the next window
    // starts every chain Good again.
    link_state_[rule_index].clear();
  }
}

bool FaultInjector::in_group(const std::vector<std::uint32_t>& group,
                             std::uint32_t pid) const noexcept {
  return std::binary_search(group.begin(), group.end(), pid);
}

bool FaultInjector::partition_blocks(core::Pid from, core::Pid to) {
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    if (!active_[i]) continue;
    const FaultRule& r = plan_.rules[i];
    if (r.kind != FaultKind::kPartition) continue;
    if (in_group(r.group, from.value()) != in_group(r.group, to.value())) {
      ++stats_.partition_dropped;
      return true;
    }
  }
  return false;
}

bool FaultInjector::duplicate() {
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    if (!active_[i] || plan_.rules[i].kind != FaultKind::kDuplicate) continue;
    if (rng_.bernoulli(plan_.rules[i].probability)) {
      ++stats_.duplicated;
      return true;
    }
  }
  return false;
}

std::uint64_t FaultInjector::chain_seed(std::size_t rule_index,
                                        std::uint64_t key) const noexcept {
  // A short splitmix walk folding in every scoping ingredient; each
  // intermediate call avalanches the previous XOR before the next one.
  std::uint64_t x = plan_.seed ^ 0xC4A05'F417ULL;
  x ^= util::splitmix64(x) ^ (static_cast<std::uint64_t>(rule_index) + 1);
  x ^= util::splitmix64(x) ^ generation_[rule_index];
  x ^= util::splitmix64(x) ^ key;
  return util::splitmix64(x);
}

bool FaultInjector::burst_drop(core::Pid from, core::Pid to) {
  bool lost = false;
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    if (!active_[i] || plan_.rules[i].kind != FaultKind::kBurstLoss) continue;
    const FaultRule& r = plan_.rules[i];
    const std::uint64_t key = link_key(from, to);
    auto it = link_state_[i].find(key);
    if (it == link_state_[i].end()) {
      // First datagram on this link under this window: materialize the
      // chain Good with its own deterministic stream. Loss and state
      // advance draw from that stream only, so the chain depends solely
      // on how many datagrams this link has carried — not on traffic
      // elsewhere in the network (shard-count invariance).
      it = link_state_[i]
               .emplace(key, LinkChain{util::Rng(chain_seed(i, key)), false})
               .first;
    }
    LinkChain& chain = it->second;
    // Loss is decided by the current state, then the chain advances — so
    // a chain that flips Good->Bad on this datagram starts losing at the
    // *next* datagram on the link (the classic Gilbert–Elliott step).
    if (chain.rng.bernoulli(chain.bad ? r.loss_bad : r.loss_good)) {
      lost = true;
    }
    chain.bad = chain.rng.bernoulli(chain.bad ? 1.0 - r.p_bad_to_good
                                              : r.p_good_to_bad);
  }
  if (lost) ++stats_.burst_dropped;
  return lost;
}

bool FaultInjector::corrupt(WireBuffer& wire) {
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    if (!active_[i] || plan_.rules[i].kind != FaultKind::kCorrupt) continue;
    if (!rng_.bernoulli(plan_.rules[i].probability)) continue;
    // Scramble one random byte, then force the type tag invalid (valid
    // tags are 1..14) so the receiver's decode is guaranteed to reject:
    // a corrupted datagram must never be delivered as a valid message.
    wire[rng_.bounded(wire.size())] ^=
        static_cast<std::uint8_t>(1 + rng_.bounded(255));
    wire[8] |= 0x80;
    ++stats_.corrupted;
    return true;
  }
  return false;
}

double FaultInjector::delay_spike() {
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    if (!active_[i] || plan_.rules[i].kind != FaultKind::kDelaySpike) {
      continue;
    }
    if (rng_.bernoulli(plan_.rules[i].probability)) {
      ++stats_.delay_spikes;
      return plan_.rules[i].extra_delay;
    }
  }
  return 0.0;
}

double FaultInjector::jitter(double magnitude) {
  return magnitude > 0.0 ? rng_.uniform01() * magnitude : 0.0;
}

bool FaultInjector::partition_active() const noexcept {
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    if (active_[i] && plan_.rules[i].kind == FaultKind::kPartition) {
      return true;
    }
  }
  return false;
}

bool FaultInjector::reachable(core::Pid a, core::Pid b) const {
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    if (!active_[i]) continue;
    const FaultRule& r = plan_.rules[i];
    if (r.kind != FaultKind::kPartition) continue;
    if (in_group(r.group, a.value()) != in_group(r.group, b.value())) {
      return false;
    }
  }
  return true;
}

}  // namespace lesslog::proto
