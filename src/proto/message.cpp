#include "lesslog/proto/message.hpp"

#include <bit>
#include <cstring>

namespace lesslog::proto {

namespace {

// The wire format is little-endian; on little-endian hosts the fixed-
// width fields are plain memcpys (single load/store after inlining), with
// a portable byte-shift fallback elsewhere.

void put_u64(std::uint8_t* out, std::uint64_t v) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out, &v, 8);
  } else {
    for (int i = 0; i < 8; ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }
}

void put_u32(std::uint8_t* out, std::uint32_t v) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(out, &v, 4);
  } else {
    for (int i = 0; i < 4; ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
  }
}

std::uint64_t get_u64(const std::uint8_t* in) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t v;
    std::memcpy(&v, in, 8);
    return v;
  } else {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
    }
    return v;
  }
}

std::uint32_t get_u32(const std::uint8_t* in) noexcept {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint32_t v;
    std::memcpy(&v, in, 4);
    return v;
  } else {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
    }
    return v;
  }
}

bool valid_type(std::uint8_t tag) {
  return tag >= static_cast<std::uint8_t>(MsgType::kGetRequest) &&
         tag <= static_cast<std::uint8_t>(MsgType::kBusy);
}

}  // namespace

void encode_into(const Message& m, WireBuffer& out) noexcept {
  std::uint8_t* p = out.data();
  put_u64(p, m.request_id);
  p += 8;
  *p++ = static_cast<std::uint8_t>(m.type);
  put_u32(p, m.from.value());
  p += 4;
  put_u32(p, m.to.value());
  p += 4;
  put_u32(p, m.requester.value());
  p += 4;
  put_u32(p, m.subject.value());
  p += 4;
  put_u64(p, m.file.key());
  p += 8;
  put_u64(p, m.version);
  p += 8;
  *p++ = m.hop_count;
  *p = m.ok ? 1 : 0;
}

std::optional<Message> decode(std::span<const std::uint8_t> bytes) {
  if (bytes.size() != kWireSize) return std::nullopt;
  const std::uint8_t* p = bytes.data();
  Message m;
  m.request_id = get_u64(p);
  p += 8;
  const std::uint8_t tag = *p++;
  if (!valid_type(tag)) return std::nullopt;
  m.type = static_cast<MsgType>(tag);
  m.from = core::Pid{get_u32(p)};
  p += 4;
  m.to = core::Pid{get_u32(p)};
  p += 4;
  m.requester = core::Pid{get_u32(p)};
  p += 4;
  m.subject = core::Pid{get_u32(p)};
  p += 4;
  m.file = core::FileId{get_u64(p)};
  p += 8;
  m.version = get_u64(p);
  p += 8;
  m.hop_count = *p++;
  // Strict decoding: the flag byte must be exactly 0 or 1 so every
  // accepted buffer re-encodes byte-identically (fuzz-tested).
  if (*p > 1) return std::nullopt;
  m.ok = *p != 0;
  return m;
}

}  // namespace lesslog::proto
