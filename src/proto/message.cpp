#include "lesslog/proto/message.hpp"

namespace lesslog::proto {

namespace {

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_u64(const std::vector<std::uint8_t>& in, std::size_t& at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[at++]) << (8 * i);
  }
  return v;
}

std::uint32_t get_u32(const std::vector<std::uint8_t>& in, std::size_t& at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[at++]) << (8 * i);
  }
  return v;
}

bool valid_type(std::uint8_t tag) {
  return tag >= static_cast<std::uint8_t>(MsgType::kGetRequest) &&
         tag <= static_cast<std::uint8_t>(MsgType::kFilePushAck);
}

}  // namespace

std::vector<std::uint8_t> encode(const Message& m) {
  std::vector<std::uint8_t> out;
  out.reserve(kWireSize);
  put_u64(out, m.request_id);
  out.push_back(static_cast<std::uint8_t>(m.type));
  put_u32(out, m.from.value());
  put_u32(out, m.to.value());
  put_u32(out, m.requester.value());
  put_u32(out, m.subject.value());
  put_u64(out, m.file.key());
  put_u64(out, m.version);
  out.push_back(m.hop_count);
  out.push_back(m.ok ? 1 : 0);
  return out;
}

std::optional<Message> decode(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() != kWireSize) return std::nullopt;
  std::size_t at = 0;
  Message m;
  m.request_id = get_u64(bytes, at);
  const std::uint8_t tag = bytes[at++];
  if (!valid_type(tag)) return std::nullopt;
  m.type = static_cast<MsgType>(tag);
  m.from = core::Pid{get_u32(bytes, at)};
  m.to = core::Pid{get_u32(bytes, at)};
  m.requester = core::Pid{get_u32(bytes, at)};
  m.subject = core::Pid{get_u32(bytes, at)};
  m.file = core::FileId{get_u64(bytes, at)};
  m.version = get_u64(bytes, at);
  m.hop_count = bytes[at++];
  // Strict decoding: the flag byte must be exactly 0 or 1 so every
  // accepted buffer re-encodes byte-identically (fuzz-tested).
  if (bytes[at] > 1) return std::nullopt;
  m.ok = bytes[at++] != 0;
  return m;
}

const char* type_name(MsgType t) noexcept {
  switch (t) {
    case MsgType::kGetRequest: return "GET";
    case MsgType::kGetReply: return "REPLY";
    case MsgType::kInsertRequest: return "INSERT";
    case MsgType::kInsertAck: return "INS_ACK";
    case MsgType::kCreateReplica: return "CREATE";
    case MsgType::kUpdatePush: return "UPDATE";
    case MsgType::kStatusAnnounce: return "STATUS";
    case MsgType::kFilePush: return "PUSH";
    case MsgType::kReclaim: return "RECLAIM";
    case MsgType::kFilePushAck: return "PUSH_ACK";
  }
  return "???";
}

}  // namespace lesslog::proto
