// Figure 6 — "An evenly-distributed load on LessLog" with dead nodes.
//
// Same sweep as Figure 5, LessLog only, with 10%, 20%, and 30% of the 1024
// ID slots dead (the advanced system model: incomplete binomial lookup
// trees, stand-in holders, spliced children lists).
//
// Paper claims checked: the three configurations create a similar number
// of replicas, with the 30%-dead system drifting higher at high rates
// ("creates more replicas when the number of requests increases due to
// the incomplete lookup tree").
#include "bench_common.hpp"

#include "lesslog/baseline/policy.hpp"

int main(int argc, char** argv) {
  using namespace lesslog;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const std::vector<double> rates = bench::paper_rates(args.quick);
  sim::ExperimentConfig base = bench::paper_config();
  base.workload = sim::WorkloadKind::kUniform;
  args.apply(base);
  bench::print_header("Figure 6: LessLog under dead nodes, even distribution",
                      base, args);

  util::ThreadPool pool;
  std::vector<bench::SolveRow> rows;
  const auto t0 = std::chrono::steady_clock::now();
  sim::FigureData fig("Figure 6 (replicas vs. incoming requests)",
                      "requests/s", rates);
  for (const double dead : {0.1, 0.2, 0.3}) {
    sim::ExperimentConfig cfg = base;
    cfg.dead_fraction = dead;
    const std::string label =
        std::to_string(static_cast<int>(dead * 100)) + "% dead";
    fig.add_series(label, bench::sweep_series_timed(
                              pool, rates, cfg, baseline::lesslog_policy(),
                              args.seeds, "fig6_even_dead",
                              "lesslog/" + label, rows));
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  bench::emit(fig, args);
  if (args.json.has_value()) bench::write_json(*args.json, args, rows, wall_ms);

  // Similarity: max/min ratio stays moderate at every rate.
  bool similar = true;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    double lo = 1e18;
    double hi = 0.0;
    for (std::size_t s = 0; s < fig.series_count(); ++s) {
      lo = std::min(lo, fig.series(s).values[i]);
      hi = std::max(hi, fig.series(s).values[i]);
    }
    similar = similar && hi <= lo * 1.6 + 8.0;
  }
  bench::check(similar,
               "10/20/30% dead create a similar number of replicas");
  bench::check(fig.roughly_increasing("30% dead", 3.0),
               "replica demand grows with rate despite dead nodes");
  bench::check(fig.find("30% dead")->values.back() + 2.0 >=
                   fig.find("10% dead")->values.back(),
               "30% dead drifts highest at the top rate");
  return 0;
}
