// Ablation A5 — dynamic churn (the paper's stated future work: "obtain
// performance data in a real-world scenario where nodes dynamically join
// and leave the system").
//
// Drives the full System (status-word broadcasts, file re-homing,
// crash recovery) with Poisson request/join/leave/crash processes at
// increasing churn rates and reports request fault fraction, files lost,
// lookup cost, and maintenance traffic — for b = 0 and b = 2.
//
// Every (b, rate, seed) run is an independent simulation, so the full
// grid runs on the shared thread pool (--threads N). Per-(b, rate)
// averages sum the per-seed values in ascending seed order — the same
// order the old sequential loop used — so stdout is byte-identical for
// every thread count.
#include <chrono>

#include "bench_common.hpp"

#include "lesslog/sim/churn.hpp"

int main(int argc, char** argv) {
  using namespace lesslog;
  const auto t0 = std::chrono::steady_clock::now();
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const std::vector<double> churn_rates =
      args.quick ? std::vector<double>{0.2, 1.0}
                 : std::vector<double>{0.1, 0.25, 0.5, 1.0, 2.0};

  std::cout << "== Ablation A5: dynamic churn (future-work experiment) ==\n"
            << "m=8, 200 initial nodes, 64 files, 600 simulated seconds,\n"
            << "200 req/s; x = membership events/s (half leaves+joins, "
               "half crashes)\n\n";

  // Flatten b x rate x seed into one independent cell list.
  struct Key {
    int b;
    double rate;
    int seed;
  };
  std::vector<Key> keys;
  for (const int b : {0, 2}) {
    for (const double rate : churn_rates) {
      for (int seed = 1; seed <= args.seeds; ++seed) {
        keys.push_back({b, rate, seed});
      }
    }
  }
  struct SeedCell {
    double fault_pct = 0.0;
    double lost = 0.0;
    double hops = 0.0;
    double maint_per_event = 0.0;
  };
  const std::vector<SeedCell> cells = bench::run_cells_parallel(
      args.threads, keys.size(), [&](std::size_t i) {
        const Key& k = keys[i];
        sim::ChurnConfig cfg;
        cfg.m = 8;
        cfg.b = k.b;
        cfg.initial_nodes = 200;
        cfg.min_nodes = 64;
        cfg.files = 64;
        cfg.duration = args.quick ? 120.0 : 600.0;
        cfg.request_rate = 200.0;
        cfg.join_rate = k.rate / 2.0;
        cfg.leave_rate = k.rate / 4.0;
        cfg.fail_rate = k.rate / 4.0;
        cfg.seed = static_cast<std::uint64_t>(k.seed);
        const sim::ChurnResult r = sim::run_churn(cfg);
        SeedCell out;
        out.fault_pct = 100.0 * r.fault_fraction();
        out.lost = static_cast<double>(r.files_lost);
        out.hops = r.mean_hops;
        const double events =
            static_cast<double>(r.joins + r.leaves + r.fails);
        out.maint_per_event =
            events > 0.0
                ? static_cast<double>(r.maintenance_messages) / events
                : 0.0;
        return out;
      });

  std::vector<bench::WireRow> rows;
  std::size_t next = 0;
  for (const int b : {0, 2}) {
    sim::FigureData fig("A5 churn outcomes (b=" + std::to_string(b) + ")",
                        "events/s", churn_rates);
    std::vector<double> fault_pct;
    std::vector<double> lost;
    std::vector<double> hops;
    std::vector<double> maint_per_event;
    for (const double rate : churn_rates) {
      double faults = 0.0;
      double lost_total = 0.0;
      double hops_total = 0.0;
      double maint = 0.0;
      for (int seed = 1; seed <= args.seeds; ++seed) {
        const SeedCell& cell = cells[next++];
        faults += cell.fault_pct;
        lost_total += cell.lost;
        hops_total += cell.hops;
        maint += cell.maint_per_event;
      }
      fault_pct.push_back(faults / args.seeds);
      lost.push_back(lost_total / args.seeds);
      hops.push_back(hops_total / args.seeds);
      maint_per_event.push_back(maint / args.seeds);
      rows.push_back(bench::WireRow{
          "abl_churn",
          "b=" + std::to_string(b) + ",rate=" + std::to_string(rate),
          {{"fault_pct", fault_pct.back()},
           {"files_lost", lost.back()},
           {"mean_hops", hops.back()},
           {"maint_msgs_per_event", maint_per_event.back()}}});
    }
    fig.add_series("request faults %", std::move(fault_pct));
    fig.add_series("files lost", std::move(lost));
    fig.add_series("mean hops", std::move(hops));
    fig.add_series("maint msgs/event", std::move(maint_per_event));
    bench::emit(fig, args);

    if (b == 2) {
      bench::check(fig.find("files lost")->values.back() == 0.0,
                   "b=2 loses no files even at the highest churn");
    } else {
      bench::check(true, "b=0 baseline recorded (losses expected under "
                         "crashes; see b=2 block)");
    }
    bench::check(fig.find("mean hops")->values.back() <= 9.0,
                 "lookup cost stays O(log N) under churn");
  }
  if (args.json.has_value()) {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    bench::write_wire_json(*args.json, args, rows, wall_ms);
  }
  return 0;
}
