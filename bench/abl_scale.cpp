// Ablation A8 — sharded-engine scaling: wall-clock of the same swarm
// workload as the shard count grows, plus the PID→shard map comparison.
//
// Every cell runs an identical deterministic workload (zero jitter, zero
// loss, fixed request pattern) on a proto::ShardedSwarm with S engine
// shards, so the *outcome* of a cell is S-independent by construction —
// the sweep isolates pure execution cost: window/barrier overhead versus
// parallel shard execution. speedup is wall(S=1)/wall(S) per m. On a
// single-core host the expected curve is flat (~1x, barrier overhead
// visible); the determinism claims are what the ctest gate enforces.
// --m 20 runs the full 2^20-slot (1M-peer) configuration.
//
// The map section reruns one cell under a clustered geography with both
// ShardMap policies and reports the cross-shard message fraction
// (net.cross_shard_msgs / (cross + intra)): the XOR-subtree locality map
// must beat the contiguous-range map, because lookup/forward traffic
// follows tree edges and the subtree map keeps every small subtree on
// one shard.
//
// --smoke runs one small m in-process at S = 1 and S = 4 and exits
// nonzero unless the outcomes (every latency bit, message counters,
// served totals, metric snapshot) are byte-identical — the scale_smoke
// ctest gate. --shards N restricts the sweep to {1, N} ({N} alone under
// --quick, which is what the m=20 wall-gate ctest runs).
#include <algorithm>
#include <chrono>

#include "bench_common.hpp"

#include "lesslog/proto/sharded_swarm.hpp"
#include "lesslog/util/stats.hpp"

namespace {

using namespace lesslog;

proto::ShardedSwarm::Config cell_config(int m, std::size_t shards) {
  proto::ShardedSwarm::Config cfg;
  cfg.m = m;
  cfg.b = 0;
  cfg.nodes = util::space_size(m);
  cfg.seed = 42;
  cfg.shards = shards;
  cfg.net.base_latency = 0.010;  // the conservative lookahead
  cfg.net.jitter = 0.0;          // deterministic: no per-hop RNG draw
  cfg.net.drop_probability = 0.0;
  cfg.client.timeout = 0.25;  // max path (m+2)*10ms < timeout: no retries
  return cfg;
}

/// The clustered-geography variant for the map comparison: one blob of
/// PID-contiguous coordinates per shard, so the range map aligns shards
/// with clusters (distant regions, wide adaptive windows) while the
/// subtree map interleaves them (base-latency windows, minimal
/// cross-shard tree traffic).
proto::ShardedSwarm::Config map_config(int m, std::size_t shards,
                                       proto::ShardMap::Kind kind) {
  proto::ShardedSwarm::Config cfg = cell_config(m, shards);
  cfg.shard_map = kind;
  proto::Geography geo;
  geo.seed = 42;
  geo.clusters = static_cast<std::uint32_t>(shards);
  geo.cluster_radius = 0.04;
  cfg.geo = geo;
  // Geographic links stretch the longest path; keep it under the client
  // timeout so the workload still sees zero retries.
  cfg.client.timeout = 2.0;
  return cfg;
}

struct Cell {
  double wall_ms = 0.0;
  std::int64_t events = 0;
  double p50_ms = 0.0;
  double msgs_per_get = 0.0;
  double cross_frac = 0.0;
  std::vector<double> latencies;
  std::int64_t sent = 0;
  std::int64_t served = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// Drops the shard-boundary split from a counter snapshot: it is a
/// property of the deployment (S, map), not of the workload, so
/// cross-S identity checks must compare everything else.
std::vector<std::pair<std::string, std::uint64_t>> strip_shard_counters(
    std::vector<std::pair<std::string, std::uint64_t>> counters) {
  std::erase_if(counters, [](const auto& kv) {
    return kv.first == "net.cross_shard_msgs" ||
           kv.first == "net.intra_shard_msgs";
  });
  return counters;
}

/// Catalog + request mix are drawn from a fixed-seed RNG *outside* the
/// swarm, so every (m, S) cell at the same m issues the same operations.
///
/// locality_bits = 0 draws issuers uniformly. k > 0 draws each issuer
/// inside the target's 2^k-peer deep subtree (same low m-k bits, random
/// high k bits — XOR-tree-adjacent PIDs share low bits), the paper's
/// locality workload: requests resolve within the smallest common
/// subtree, so the whole forwarding path flips only high bits.
Cell run_cell(const proto::ShardedSwarm::Config& cfg,
              int locality_bits = 0) {
  proto::ShardedSwarm swarm(cfg);
  util::Rng rng(42ULL ^ 0x5CA1EULL);
  const std::uint32_t nodes = cfg.nodes;
  std::vector<std::pair<core::FileId, core::Pid>> files;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const core::FileId f{0x5EED0000ULL + i};
    const core::Pid target{static_cast<std::uint32_t>(rng.bounded(nodes))};
    files.emplace_back(f, target);
    swarm.insert(f, target, core::Pid{0});
  }
  swarm.settle();

  const int requests = static_cast<int>(2 * nodes);
  const std::int64_t msgs_before = swarm.messages_sent();
  for (int i = 0; i < requests; ++i) {
    const auto& [f, target] = files[rng.bounded(files.size())];
    core::Pid at{static_cast<std::uint32_t>(rng.bounded(nodes))};
    if (locality_bits > 0) {
      const auto high = static_cast<std::uint32_t>(
          rng.bounded(std::uint64_t{1} << locality_bits));
      at = core::Pid{target.value() ^ (high << (cfg.m - locality_bits))};
    }
    swarm.get(f, target, at);
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t events = swarm.settle();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  Cell cell;
  cell.wall_ms = wall_ms;
  cell.events = events;
  cell.latencies = swarm.all_latencies();
  std::vector<double> sorted = cell.latencies;
  std::sort(sorted.begin(), sorted.end());
  cell.p50_ms = 1000.0 * util::percentile_sorted(sorted, 50.0);
  cell.msgs_per_get =
      static_cast<double>(swarm.messages_sent() - msgs_before) / requests;
  cell.cross_frac = swarm.cross_shard_fraction();
  cell.sent = swarm.messages_sent();
  for (std::uint32_t p = 0; p < nodes; ++p) {
    cell.served += swarm.peer(core::Pid{p}).served();
  }
  cell.counters = swarm.metrics_snapshot().counters;
  return cell;
}

/// The ctest gate: one small m, S = 1 versus S = 4, byte-identical
/// outcomes (modulo the shard-boundary counters, which exist only to
/// measure the deployment). The swarm's parallel windows must not
/// perturb a single latency bit, message count, or workload metric cell.
int run_smoke() {
  constexpr int kM = 8;
  const Cell serial = run_cell(cell_config(kM, 1));
  const Cell sharded = run_cell(cell_config(kM, 4));
  const bool latencies_ok = serial.latencies == sharded.latencies;
  const bool counters_ok = strip_shard_counters(serial.counters) ==
                           strip_shard_counters(sharded.counters);
  const bool ok = latencies_ok && counters_ok &&
                  serial.sent == sharded.sent &&
                  serial.served == sharded.served && serial.served > 0 &&
                  serial.events == sharded.events;
  std::cout << "scale smoke: m=" << kM << " gets="
            << serial.latencies.size() << " served=" << serial.served
            << " events=" << serial.events
            << " latencies_identical=" << (latencies_ok ? "yes" : "NO")
            << " snapshots_identical=" << (counters_ok ? "yes" : "NO")
            << " -> " << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lesslog;
  const auto t0 = std::chrono::steady_clock::now();
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  if (args.smoke) return run_smoke();

  const std::vector<int> widths =
      args.m.has_value() ? std::vector<int>{*args.m}
      : args.quick       ? std::vector<int>{10, 12}
                         : std::vector<int>{10, 12, 14, 16, 20};
  std::vector<std::size_t> shard_counts{1, 2, 4, 8};
  if (args.shards > 1) {
    // --quick with an explicit shard count is the wall-gate shape: the
    // one parallel cell alone, no serial rerun (at m = 20 the S = 1
    // pass would dominate the gate's budget without testing anything
    // the scale_smoke gate doesn't).
    shard_counts = args.quick
                       ? std::vector<std::size_t>{
                             static_cast<std::size_t>(args.shards)}
                       : std::vector<std::size_t>{
                             1, static_cast<std::size_t>(args.shards)};
  } else if (args.quick) {
    shard_counts = {1, 2, 4};
  }

  std::cout << "== Ablation A8: sharded-engine scaling (10 ms lookahead, "
               "deterministic workload) ==\n"
            << "2 requests per node, 64-file catalog, seed 42\n\n";

  std::vector<bench::WireRow> rows;
  for (const int m : widths) {
    sim::FigureData fig("A8 scale m=" + std::to_string(m), "shards",
                        [&shard_counts] {
                          std::vector<double> xs;
                          for (const std::size_t s : shard_counts) {
                            xs.push_back(static_cast<double>(s));
                          }
                          return xs;
                        }());
    std::vector<double> wall;
    std::vector<double> speedup;
    double serial_wall = 0.0;
    bool identical = true;
    const Cell* base = nullptr;
    std::vector<Cell> cells;
    cells.reserve(shard_counts.size());
    for (const std::size_t s : shard_counts) {
      cells.push_back(run_cell(cell_config(m, s)));
      const Cell& cell = cells.back();
      if (s == shard_counts.front()) {
        serial_wall = cell.wall_ms;
        base = &cells.back();
      } else if (base != nullptr) {
        identical = identical && cell.latencies == base->latencies &&
                    strip_shard_counters(cell.counters) ==
                        strip_shard_counters(base->counters) &&
                    cell.events == base->events;
      }
      wall.push_back(cell.wall_ms);
      speedup.push_back(cell.wall_ms > 0.0 ? serial_wall / cell.wall_ms
                                           : 0.0);
      rows.push_back(bench::WireRow{
          "abl_scale",
          "m=" + std::to_string(m) + ",S=" + std::to_string(s),
          {{"wall_ms", cell.wall_ms},
           {"speedup", speedup.back()},
           {"events", static_cast<double>(cell.events)},
           {"p50_ms", cell.p50_ms},
           {"msgs_per_get", cell.msgs_per_get},
           {"cross_frac", cell.cross_frac}}});
    }
    fig.add_series("wall ms", std::move(wall));
    fig.add_series("speedup vs S=1", std::move(speedup));
    bench::emit(fig, args, /*precision=*/2);
    if (shard_counts.size() > 1) {
      bench::check(identical,
                   "outcome (latencies, events, metrics) is S-independent");
    }
  }

  // -- PID→shard map comparison under a clustered geography ------------
  // One blob per shard, tree-local request mix (issuers inside the
  // target's 64-peer subtree). Lookup paths then flip only high PID
  // bits: the subtree map (p mod S, keyed on low bits) keeps every hop
  // on one shard, while the range map (p / block, keyed on high bits)
  // crosses on nearly every hop. On *uniform* traffic the two maps tie
  // — a lookup flips high bits first and low bits last, crossing s/2
  // expected boundaries under either map (see the main sweep's
  // cross_frac column) — so the locality workload is where the mapping
  // choice matters, exactly the paper's locality scenario.
  if (!args.m.has_value() || *args.m <= 14) {
    const int m_map = args.quick ? 10 : 12;
    const std::size_t s_map =
        args.shards > 1 ? static_cast<std::size_t>(args.shards) : 4;
    constexpr int kLocalityBits = 6;  // 64-peer issuer subtrees
    std::cout << "\n-- map comparison: clustered geography, tree-local "
                 "requests, m="
              << m_map << ", S=" << s_map << " --\n";
    double fracs[2] = {0.0, 0.0};
    const proto::ShardMap::Kind kinds[2] = {proto::ShardMap::Kind::kRange,
                                            proto::ShardMap::Kind::kSubtree};
    for (int k = 0; k < 2; ++k) {
      const Cell cell =
          run_cell(map_config(m_map, s_map, kinds[k]), kLocalityBits);
      fracs[k] = cell.cross_frac;
      const char* name = proto::shard_map_name(kinds[k]);
      std::cout << "map=" << name << " cross_frac=" << fracs[k]
                << " wall_ms=" << cell.wall_ms << " events=" << cell.events
                << "\n";
      rows.push_back(bench::WireRow{
          "abl_scale",
          "m=" + std::to_string(m_map) + ",S=" + std::to_string(s_map) +
              ",geo=clustered,local,map=" + name,
          {{"wall_ms", cell.wall_ms},
           {"events", static_cast<double>(cell.events)},
           {"cross_frac", cell.cross_frac}}});
    }
#if LESSLOG_METRICS_ENABLED
    bench::check(fracs[1] < fracs[0],
                 "subtree locality map crosses shards less than the range "
                 "map on tree-local traffic");
#endif
  }

  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  if (args.json.has_value()) {
    bench::write_wire_json(*args.json, args, rows, wall_ms);
  }
  return bench::enforce_wall_gate(args, wall_ms);
}
