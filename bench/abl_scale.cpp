// Ablation A8 — sharded-engine scaling: wall-clock of the same swarm
// workload as the shard count grows.
//
// Every cell runs an identical deterministic workload (zero jitter, zero
// loss, fixed request pattern) on a proto::ShardedSwarm with S engine
// shards, so the *outcome* of a cell is S-independent by construction —
// the sweep isolates pure execution cost: window/barrier overhead versus
// parallel shard execution. speedup is wall(S=1)/wall(S) per m. On a
// single-core host the expected curve is flat (~1x, barrier overhead
// visible); the determinism claims are what the ctest gate enforces.
//
// --smoke runs one small m in-process at S = 1 and S = 4 and exits
// nonzero unless the outcomes (every latency bit, message counters,
// served totals, metric snapshot) are byte-identical — the scale_smoke
// ctest gate. --shards N restricts the sweep to {1, N}.
#include <algorithm>
#include <chrono>

#include "bench_common.hpp"

#include "lesslog/proto/sharded_swarm.hpp"
#include "lesslog/util/stats.hpp"

namespace {

using namespace lesslog;

proto::ShardedSwarm::Config cell_config(int m, std::size_t shards) {
  proto::ShardedSwarm::Config cfg;
  cfg.m = m;
  cfg.b = 0;
  cfg.nodes = util::space_size(m);
  cfg.seed = 42;
  cfg.shards = shards;
  cfg.net.base_latency = 0.010;  // the conservative lookahead
  cfg.net.jitter = 0.0;          // deterministic: no per-hop RNG draw
  cfg.net.drop_probability = 0.0;
  cfg.client.timeout = 0.25;  // max path (m+2)*10ms < timeout: no retries
  return cfg;
}

struct Cell {
  double wall_ms = 0.0;
  std::int64_t events = 0;
  double p50_ms = 0.0;
  double msgs_per_get = 0.0;
  std::vector<double> latencies;
  std::int64_t sent = 0;
  std::int64_t served = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

/// Catalog + request mix are drawn from a fixed-seed RNG *outside* the
/// swarm, so every (m, S) cell at the same m issues the same operations.
Cell run_cell(int m, std::size_t shards) {
  proto::ShardedSwarm swarm(cell_config(m, shards));
  util::Rng rng(42ULL ^ 0x5CA1EULL);
  const std::uint32_t nodes = util::space_size(m);
  std::vector<std::pair<core::FileId, core::Pid>> files;
  for (std::uint64_t i = 0; i < 64; ++i) {
    const core::FileId f{0x5EED0000ULL + i};
    const core::Pid target{static_cast<std::uint32_t>(rng.bounded(nodes))};
    files.emplace_back(f, target);
    swarm.insert(f, target, core::Pid{0});
  }
  swarm.settle();

  const int requests = static_cast<int>(2 * nodes);
  const std::int64_t msgs_before = swarm.messages_sent();
  for (int i = 0; i < requests; ++i) {
    const auto& [f, target] = files[rng.bounded(files.size())];
    const core::Pid at{static_cast<std::uint32_t>(rng.bounded(nodes))};
    swarm.get(f, target, at);
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t events = swarm.settle();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();

  Cell cell;
  cell.wall_ms = wall_ms;
  cell.events = events;
  cell.latencies = swarm.all_latencies();
  std::vector<double> sorted = cell.latencies;
  std::sort(sorted.begin(), sorted.end());
  cell.p50_ms = 1000.0 * util::percentile_sorted(sorted, 50.0);
  cell.msgs_per_get =
      static_cast<double>(swarm.messages_sent() - msgs_before) / requests;
  cell.sent = swarm.messages_sent();
  for (std::uint32_t p = 0; p < nodes; ++p) {
    cell.served += swarm.peer(core::Pid{p}).served();
  }
  cell.counters = swarm.metrics_snapshot().counters;
  return cell;
}

/// The ctest gate: one small m, S = 1 versus S = 4, byte-identical
/// outcomes. The swarm's parallel windows must not perturb a single
/// latency bit, message count, or metric cell.
int run_smoke() {
  constexpr int kM = 8;
  const Cell serial = run_cell(kM, 1);
  const Cell sharded = run_cell(kM, 4);
  const bool latencies_ok = serial.latencies == sharded.latencies;
  const bool counters_ok = serial.counters == sharded.counters;
  const bool ok = latencies_ok && counters_ok &&
                  serial.sent == sharded.sent &&
                  serial.served == sharded.served && serial.served > 0 &&
                  serial.events == sharded.events;
  std::cout << "scale smoke: m=" << kM << " gets="
            << serial.latencies.size() << " served=" << serial.served
            << " events=" << serial.events
            << " latencies_identical=" << (latencies_ok ? "yes" : "NO")
            << " snapshots_identical=" << (counters_ok ? "yes" : "NO")
            << " -> " << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lesslog;
  const auto t0 = std::chrono::steady_clock::now();
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  if (args.smoke) return run_smoke();

  const std::vector<int> widths =
      args.m.has_value() ? std::vector<int>{*args.m}
      : args.quick       ? std::vector<int>{10, 12}
                         : std::vector<int>{10, 12, 14, 16};
  std::vector<std::size_t> shard_counts{1, 2, 4, 8};
  if (args.shards > 1) {
    shard_counts = {1, static_cast<std::size_t>(args.shards)};
  } else if (args.quick) {
    shard_counts = {1, 2, 4};
  }

  std::cout << "== Ablation A8: sharded-engine scaling (10 ms lookahead, "
               "deterministic workload) ==\n"
            << "2 requests per node, 64-file catalog, seed 42\n\n";

  std::vector<bench::WireRow> rows;
  for (const int m : widths) {
    sim::FigureData fig("A8 scale m=" + std::to_string(m), "shards",
                        [&shard_counts] {
                          std::vector<double> xs;
                          for (const std::size_t s : shard_counts) {
                            xs.push_back(static_cast<double>(s));
                          }
                          return xs;
                        }());
    std::vector<double> wall;
    std::vector<double> speedup;
    double serial_wall = 0.0;
    bool identical = true;
    const Cell* base = nullptr;
    std::vector<Cell> cells;
    cells.reserve(shard_counts.size());
    for (const std::size_t s : shard_counts) {
      cells.push_back(run_cell(m, s));
      const Cell& cell = cells.back();
      if (s == shard_counts.front()) {
        serial_wall = cell.wall_ms;
        base = &cells.back();
      } else if (base != nullptr) {
        identical = identical && cell.latencies == base->latencies &&
                    cell.counters == base->counters &&
                    cell.events == base->events;
      }
      wall.push_back(cell.wall_ms);
      speedup.push_back(cell.wall_ms > 0.0 ? serial_wall / cell.wall_ms
                                           : 0.0);
      rows.push_back(bench::WireRow{
          "abl_scale",
          "m=" + std::to_string(m) + ",S=" + std::to_string(s),
          {{"wall_ms", cell.wall_ms},
           {"speedup", speedup.back()},
           {"events", static_cast<double>(cell.events)},
           {"p50_ms", cell.p50_ms},
           {"msgs_per_get", cell.msgs_per_get}}});
    }
    fig.add_series("wall ms", std::move(wall));
    fig.add_series("speedup vs S=1", std::move(speedup));
    bench::emit(fig, args, /*precision=*/2);
    bench::check(identical,
                 "outcome (latencies, events, metrics) is S-independent");
  }
  if (args.json.has_value()) {
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    bench::write_wire_json(*args.json, args, rows, wall_ms);
  }
  return 0;
}
