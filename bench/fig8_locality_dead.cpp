// Figure 8 — "A locality model on LessLog" with dead nodes.
//
// The locality workload of Figure 7 with 10/20/30% dead ID slots, LessLog
// only. Cells where a hot node's own client demand exceeds the 100 req/s
// capacity cannot be balanced by ANY placement (the node must serve its
// local clients); the harness reports those cells' replica counts and
// flags them — at 30% dead this begins around 18k req/s, an artifact the
// paper's text acknowledges as the 30%-dead curve pulling away.
#include "bench_common.hpp"

#include "lesslog/baseline/policy.hpp"

int main(int argc, char** argv) {
  using namespace lesslog;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const std::vector<double> rates = bench::paper_rates(args.quick);
  sim::ExperimentConfig base = bench::paper_config();
  base.workload = sim::WorkloadKind::kLocality;
  args.apply(base);
  bench::print_header("Figure 8: LessLog under dead nodes, locality model",
                      base, args);

  util::ThreadPool pool;
  sim::FigureData fig("Figure 8 (replicas vs. incoming requests)",
                      "requests/s", rates);
  std::vector<bench::SolveRow> rows;
  const auto t0 = std::chrono::steady_clock::now();
  int irreducible = 0;
  std::mutex mu;
  for (const double dead : {0.1, 0.2, 0.3}) {
    sim::ExperimentConfig cfg = base;
    cfg.dead_fraction = dead;
    const std::string label =
        std::to_string(static_cast<int>(dead * 100)) + "% dead";
    std::vector<double> ys(rates.size(), 0.0);
    std::vector<bench::SolveRow> local(rates.size());
    util::parallel_for(pool, rates.size(), [&](std::size_t i) {
      sim::ExperimentConfig cell = cfg;
      cell.total_rate = rates[i];
      double total = 0.0;
      std::int64_t solves = 0;
      int cell_irreducible = 0;
      const auto cell_t0 = std::chrono::steady_clock::now();
      for (int seed = 1; seed <= args.seeds; ++seed) {
        cell.seed = static_cast<std::uint64_t>(seed);
        const sim::ExperimentResult r = sim::run_replication_experiment(
            cell, baseline::lesslog_policy());
        total += r.replicas_created;
        solves += r.replicas_created + 1;
        if (r.irreducible_overload) ++cell_irreducible;
      }
      const auto cell_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - cell_t0)
              .count();
      ys[i] = total / args.seeds;
      local[i] = bench::SolveRow{
          "fig8_locality_dead", cell.m, rates[i], "lesslog/" + label,
          solves > 0
              ? static_cast<double>(cell_ns) / static_cast<double>(solves)
              : 0.0,
          ys[i]};
      std::lock_guard lock(mu);
      irreducible += cell_irreducible;
    });
    fig.add_series(label, std::move(ys));
    rows.insert(rows.end(), local.begin(), local.end());
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  bench::emit(fig, args);
  if (args.json.has_value()) bench::write_json(*args.json, args, rows, wall_ms);
  std::cout << "cells ending in irreducible local overload: " << irreducible
            << " (hot node's own clients exceed capacity; no placement can "
               "shed that)\n\n";

  bool similar = true;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    double lo = 1e18;
    double hi = 0.0;
    for (std::size_t s = 0; s < fig.series_count(); ++s) {
      lo = std::min(lo, fig.series(s).values[i]);
      hi = std::max(hi, fig.series(s).values[i]);
    }
    similar = similar && hi <= lo * 1.7 + 10.0;
  }
  bench::check(similar,
               "10/20/30% dead create a similar number of replicas");
  bench::check(fig.roughly_increasing("10% dead", 3.0),
               "replica demand grows with rate");
  return 0;
}
