// Ablation A10 — the cost of proximity-obliviousness.
//
// The paper's related work (Plaxton/OceanStore) replicates toward
// *geographically close* copies using access logs; LessLog deliberately
// ignores proximity to stay logless. This ablation puts a number on that
// trade: peers live on a unit square with distance-proportional link
// latency, and we measure the *stretch* of GETFILE round trips — observed
// latency over the ideal direct round trip to the serving copy — before
// and after LessLog replication spreads copies. Each replica count is an
// independent cell run on the shared thread pool (--threads N), gathered
// in order so stdout is byte-identical for every thread count.
#include <chrono>

#include "bench_common.hpp"

#include "lesslog/proto/swarm.hpp"
#include "lesslog/util/stats.hpp"

namespace {

using namespace lesslog;

struct StretchStats {
  double mean = 0.0;
  double p95 = 0.0;
  double mean_latency_ms = 0.0;
  obs::Snapshot snap;  ///< the cell swarm's final metric snapshot
};

StretchStats measure_stretch(int m, int replicas_per_file,
                             std::uint64_t seed, int probes) {
  proto::Swarm::Config cfg;
  cfg.m = m;
  cfg.b = 0;
  cfg.nodes = util::space_size(m);
  cfg.seed = seed;
  cfg.net.base_latency = 0.001;
  cfg.net.jitter = 0.0;
  proto::Swarm swarm(cfg);
  swarm.network().enable_geography(
      {.slots = util::space_size(m), .seed = seed, .latency_per_unit = 0.08});

  // A handful of files, optionally pre-replicated by the LessLog rule.
  std::vector<core::FileId> files;
  for (std::uint64_t i = 0; i < 16; ++i) {
    files.push_back(swarm.insert_named(0xA10'0000ULL + seed * 100 + i,
                                       core::Pid{0}));
  }
  swarm.settle();
  for (const core::FileId f : files) {
    const core::Pid target = swarm.peer(core::Pid{0}).target_of(f);
    core::Pid holder = target;
    std::vector<core::Pid> placed{target};
    for (int r = 0; r < replicas_per_file; ++r) {
      const auto next = swarm.replicate(
          f, target, holder, [&placed](core::Pid p) {
            return std::find(placed.begin(), placed.end(), p) !=
                   placed.end();
          });
      if (!next.has_value()) break;
      placed.push_back(*next);
    }
    swarm.settle();
  }

  util::Rng rng(seed ^ 0x57);
  std::vector<double> stretches;
  util::Accumulator latency;
  int done = 0;
  while (done < probes) {
    const core::FileId f = files[rng.bounded(files.size())];
    const core::Pid target = swarm.peer(core::Pid{0}).target_of(f);
    const core::Pid at{
        static_cast<std::uint32_t>(rng.bounded(util::space_size(m)))};
    proto::GetResult result;
    core::Pid server{};
    bool got_server = false;
    swarm.get(f, target, at, [&](const proto::GetResult& r) {
      result = r;
      got_server = r.ok;
    });
    swarm.settle();
    if (!got_server || result.hops == 0) continue;  // local hits: stretch 1
    // Reconstruct the server: re-run the query; the serving peer is the
    // one whose counter moved. Cheaper: ideal = direct round trip to the
    // *closest* copy — the fair Plaxton-style yardstick.
    double best_direct = 1e18;
    for (std::uint32_t p = 0; p < util::space_size(m); ++p) {
      if (swarm.peer(core::Pid{p}).store().has(f)) {
        best_direct = std::min(
            best_direct,
            2.0 * swarm.network().link_latency(at, core::Pid{p}));
      }
    }
    (void)server;
    if (best_direct < 1e-6) continue;
    stretches.push_back(result.latency / best_direct);
    latency.add(result.latency * 1000.0);
    ++done;
  }
  StretchStats out;
  out.mean = util::percentile(stretches, 50.0);
  out.p95 = util::percentile(stretches, 95.0);
  out.mean_latency_ms = latency.mean();
  out.snap = swarm.registry().snapshot(swarm.engine().now());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lesslog;
  const auto t0 = std::chrono::steady_clock::now();
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const int m = args.quick ? 6 : 8;
  const int probes = args.quick ? 200 : 1000;

  std::cout << "== Ablation A10: proximity stretch of GETFILE ==\n"
            << "unit-square topology, 80 ms/unit links, N = "
            << util::space_size(m)
            << "; stretch = observed RTT / direct RTT to the closest copy\n\n";

  const std::vector<double> replica_counts{0.0, 2.0, 8.0, 32.0};
  sim::FigureData fig("A10 stretch vs pre-placed replicas/file",
                      "replicas/file", replica_counts);
  const std::vector<StretchStats> cells = bench::run_cells_parallel(
      args.threads, replica_counts.size(), [&](std::size_t i) {
        return measure_stretch(m, static_cast<int>(replica_counts[i]), 7,
                               probes);
      });
  std::vector<double> median;
  std::vector<double> p95;
  std::vector<double> lat;
  std::vector<bench::WireRow> rows;
  for (std::size_t i = 0; i < replica_counts.size(); ++i) {
    const StretchStats& s = cells[i];
    median.push_back(s.mean);
    p95.push_back(s.p95);
    lat.push_back(s.mean_latency_ms);
    rows.push_back(bench::WireRow{
        "abl_proximity",
        "replicas=" + std::to_string(static_cast<int>(replica_counts[i])),
        {{"median_stretch", s.mean},
         {"p95_stretch", s.p95},
         {"mean_latency_ms", s.mean_latency_ms}}});
  }
  fig.add_series("median stretch", std::move(median));
  fig.add_series("p95 stretch", std::move(p95));
  fig.add_series("mean latency ms", std::move(lat));
  bench::emit(fig, args, /*precision=*/2);

  bench::check(fig.find("median stretch")->values.front() >= 1.0,
               "stretch is always >= 1 (routing cannot beat the direct "
               "path)");
  bench::check(fig.find("mean latency ms")->values.back() <
                   fig.find("mean latency ms")->values.front(),
               "replication reduces absolute latency (copies land closer "
               "to requesters)");
  std::cout << "\nReading: LessLog pays a proximity-stretch factor (it is "
               "logless and\nlocation-oblivious); spreading replicas "
               "shrinks absolute latency anyway\nbecause the tree walk "
               "gets shorter and copies densify. Plaxton-style\nsystems "
               "buy stretch ~1 at the price of the access logging LessLog "
               "avoids.\n";
  if (args.json.has_value()) {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    bench::write_wire_json(*args.json, args, rows, wall_ms, /*seed=*/7);
  }
  obs::Snapshot merged;
  for (const StretchStats& s : cells) merged.merge_from(s.snap);
  return bench::emit_metrics(args, "abl_proximity", 7, merged);
}
