// Ablation A3 — fault-tolerance degree b: storage overhead vs. survival.
//
// Section 4 stores each file at 2^b targets and guarantees availability as
// long as the 2^b holders never fail simultaneously. This ablation crashes
// an increasing fraction of a live system (without recovery between
// crashes executing — System recovers after each crash, which is the
// protocol) and reports files lost and request fault rate per b, plus the
// storage overhead paid. --json mirrors every (b, fraction) cell to a
// "lesslog.bench" v1 document.
//
// --shards N (N > 1) runs the same storm through the full message-level
// ShardedSwarm instead of the abstract core::System: crashes are real
// failure announcements on the wire, recovery is the protocol's own
// repair traffic, and "lost" means no live peer's store holds the file
// at quiescence. The b-dominance shape claims must hold in both models.
#include <chrono>

#include "bench_common.hpp"

#include "lesslog/core/system.hpp"
#include "lesslog/proto/sharded_swarm.hpp"
#include "lesslog/util/rng.hpp"

namespace {

using namespace lesslog;

struct StormCell {
  double lost = 0.0;
  double copies = 0.0;  ///< summed holder count over all files, at insert
};

/// One (b, fraction, seed) storm on the sharded swarm. Mirrors the
/// core::System cell: same key schedule, same crash-victim stream, a
/// settle after every crash so recovery executes between failures.
StormCell run_swarm_cell(int m, std::uint32_t nodes, std::uint32_t files,
                         int b, double frac, std::uint64_t seed,
                         std::size_t shards) {
  proto::ShardedSwarm::Config sc;
  sc.m = m;
  sc.b = b;
  sc.nodes = nodes;
  sc.seed = seed;
  sc.shards = shards;
  sc.net.drop_probability = 0.0;
  proto::ShardedSwarm sw(sc);
  util::Rng rng(static_cast<std::uint64_t>(seed) * 77 +
                static_cast<std::uint64_t>(b));
  std::vector<core::FileId> ids;
  for (std::uint32_t i = 0; i < files; ++i) {
    const std::uint64_t key =
        std::uint64_t{0xAB1000} * (seed + 1) + i;
    const core::Pid issuer{
        static_cast<std::uint32_t>(rng.bounded(nodes))};
    ids.push_back(sw.insert_named(key, issuer));
  }
  sw.settle();

  const auto live_holders = [&sw](core::FileId f) {
    std::uint32_t count = 0;
    const util::StatusWord& truth = sw.status();
    for (std::uint32_t p = 0; p < truth.capacity(); ++p) {
      if (truth.is_live(p) && sw.peer(core::Pid{p}).store().has(f)) {
        ++count;
      }
    }
    return count;
  };

  StormCell cell;
  for (const core::FileId f : ids) {
    cell.copies += static_cast<double>(live_holders(f));
  }

  const auto to_crash =
      static_cast<std::uint32_t>(frac * static_cast<double>(nodes));
  std::uint32_t crashed = 0;
  while (crashed < to_crash) {
    const auto p = static_cast<std::uint32_t>(
        rng.bounded(sw.status().capacity()));
    if (!sw.status().is_live(p)) continue;
    sw.crash(core::Pid{p});
    sw.settle();  // recovery between crashes, as the protocol specifies
    ++crashed;
  }
  for (const core::FileId f : ids) {
    if (live_holders(f) == 0) cell.lost += 1.0;
  }
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lesslog;
  const auto t0 = std::chrono::steady_clock::now();
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const int m = 8;
  const std::uint32_t nodes = 256;
  const std::uint32_t files = args.quick ? 32 : 128;
  const std::vector<double> crash_fractions{0.1, 0.3, 0.5, 0.7};

  const auto shards = static_cast<std::size_t>(args.shards);
  std::cout << "== Ablation A3: fault-tolerance degree sweep ==\n"
            << "m=" << m << ", nodes=" << nodes << ", files=" << files
            << ", crash storms of 10..70% of nodes, recovery between "
               "crashes (Section 5.3)";
  if (shards > 1) {
    std::cout << "; message-level ShardedSwarm, S=" << shards;
  }
  std::cout << "\n\n";

  sim::FigureData lost_fig("A3 files lost after crash storm",
                           "crash fraction", crash_fractions);
  sim::FigureData copies_fig("A3 storage copies per file (initial)",
                             "crash fraction", crash_fractions);

  std::vector<bench::WireRow> rows;
  for (const int b : {0, 1, 2, 3}) {
    std::vector<double> lost;
    std::vector<double> copies;
    for (const double frac : crash_fractions) {
      double lost_total = 0.0;
      double copies_total = 0.0;
      for (int seed = 1; seed <= args.seeds; ++seed) {
        if (shards > 1) {
          const StormCell cell =
              run_swarm_cell(m, nodes, files, b, frac,
                             static_cast<std::uint64_t>(seed), shards);
          lost_total += cell.lost;
          copies_total += cell.copies;
          continue;
        }
        core::System sys(
            {.m = m, .b = b, .seed = static_cast<std::uint64_t>(seed)});
        sys.bootstrap(nodes);
        std::vector<core::FileId> ids;
        for (std::uint32_t i = 0; i < files; ++i) {
          ids.push_back(sys.insert_key(
              std::uint64_t{0xAB1000} * static_cast<std::uint64_t>(seed + 1) +
              i));
        }
        for (const core::FileId f : ids) {
          copies_total += static_cast<double>(sys.holders(f).size());
        }
        util::Rng rng(static_cast<std::uint64_t>(seed) * 77 +
                      static_cast<std::uint64_t>(b));
        const auto to_crash =
            static_cast<std::uint32_t>(frac * static_cast<double>(nodes));
        std::uint32_t crashed = 0;
        while (crashed < to_crash) {
          const auto p =
              static_cast<std::uint32_t>(rng.bounded(sys.status().capacity()));
          if (!sys.is_live(core::Pid{p})) continue;
          sys.fail(core::Pid{p});
          ++crashed;
        }
        lost_total += static_cast<double>(sys.lost_files().size());
      }
      lost.push_back(lost_total / args.seeds);
      copies.push_back(copies_total /
                       (static_cast<double>(args.seeds) * files));
      rows.push_back(bench::WireRow{
          "abl_fault_tolerance",
          "b=" + std::to_string(b) + ",frac=" + std::to_string(frac),
          {{"files_lost", lost.back()},
           {"copies_per_file", copies.back()}}});
    }
    lost_fig.add_series("b=" + std::to_string(b), std::move(lost));
    copies_fig.add_series("b=" + std::to_string(b), std::move(copies));
  }

  bench::emit(lost_fig, args);
  bench::BenchArgs no_csv_args = args;
  no_csv_args.csv = std::nullopt;
  bench::emit(copies_fig, no_csv_args);

  bench::check(lost_fig.dominates("b=1", "b=0"),
               "b=1 never loses more files than b=0");
  bench::check(lost_fig.dominates("b=2", "b=1"),
               "b=2 never loses more files than b=1");
  bench::check(lost_fig.find("b=3")->values.back() <
                   lost_fig.find("b=0")->values.back(),
               "higher degrees survive even a 70% crash storm better");
  bench::check(copies_fig.find("b=2")->values.front() >
                   copies_fig.find("b=0")->values.front(),
               "the survival is paid for with 2^b initial copies");
  if (args.json.has_value()) {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    bench::write_wire_json(*args.json, args, rows, wall_ms, /*seed=*/1);
  }
  return 0;
}
