// Micro-benchmarks (google-benchmark) for the bit-level primitives the
// paper's pitch rests on: replica placement and routing decisions must be
// a handful of bitwise operations, not log analysis. These numbers put
// concrete costs on each primitive.
//
// Beyond the google-benchmark suite, the binary also:
//   * differentially checks the incremental load solver against the
//     from-scratch oracle over a small config grid and exits non-zero on
//     any mismatch (the perf_smoke ctest runs this),
//   * times the full balance loop under both solvers and, with
//     --json <path>, writes the rows in the shared bench JSON schema.
// --quick caps google-benchmark at --benchmark_min_time=0.01 and shrinks
// the timing grid so the whole binary stays in smoke-test territory.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_common.hpp"
#include "lesslog/baseline/chord.hpp"
#include "lesslog/baseline/policy.hpp"
#include "lesslog/core/children_list.hpp"
#include "lesslog/core/file_store.hpp"
#include "lesslog/core/find_live_node.hpp"
#include "lesslog/core/replication.hpp"
#include "lesslog/core/routing.hpp"
#include "lesslog/util/rng.hpp"

namespace {

using namespace lesslog;

util::StatusWord make_live(int m, double dead_fraction, std::uint64_t seed) {
  util::StatusWord live(m, util::space_size(m));
  util::Rng rng(seed);
  const auto dead = static_cast<std::uint32_t>(
      dead_fraction * static_cast<double>(util::space_size(m)));
  for (std::uint32_t p : rng.sample_indices(util::space_size(m), dead)) {
    live.set_dead(p);
  }
  return live;
}

void BM_LeadingOnes(benchmark::State& state) {
  std::uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::leading_ones(v, 10));
    v = (v + 0x9e37u) & util::mask_of(10);
  }
}
BENCHMARK(BM_LeadingOnes);

void BM_ParentVid(benchmark::State& state) {
  std::uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::set_highest_zero(v | 1u, 10));
    v = (v + 0x9e37u) & (util::mask_of(10) >> 1);
  }
}
BENCHMARK(BM_ParentVid);

void BM_VidPidConversion(benchmark::State& state) {
  const core::IdMapper mapper(10, core::Pid{517});
  std::uint32_t p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.vid_of(core::Pid{p}));
    p = (p + 1u) & util::mask_of(10);
  }
}
BENCHMARK(BM_VidPidConversion);

void BM_ChildrenList(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const core::LookupTree tree(m, core::Pid{1});
  const util::StatusWord live = make_live(m, 0.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::children_list(tree, tree.root(), live));
  }
}
BENCHMARK(BM_ChildrenList)->Arg(6)->Arg(10)->Arg(14);

void BM_ChildrenListDeadNodes(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const core::LookupTree tree(m, core::Pid{1});
  const util::StatusWord live = make_live(m, 0.3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::children_list(tree, tree.root(), live));
  }
}
BENCHMARK(BM_ChildrenListDeadNodes)->Arg(6)->Arg(10)->Arg(14);

void BM_FindLiveNode(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const double dead = static_cast<double>(state.range(1)) / 100.0;
  const core::LookupTree tree(m, core::Pid{1});
  const util::StatusWord live = make_live(m, dead, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::insertion_target(tree, live));
  }
}
BENCHMARK(BM_FindLiveNode)
    ->ArgsProduct({{6, 10, 14}, {30, 99}})
    ->ArgNames({"m", "dead_pct"});

/// The paper's FINDLIVENODE loop verbatim: probe one liveness bit per VID,
/// descending. The reference the packed bit-scan in find_live_node.cpp is
/// measured against (same tree, same liveness, same answer).
std::optional<core::Pid> find_live_tree_walk(const core::LookupTree& tree,
                                             core::Pid s,
                                             const util::StatusWord& live) {
  if (live.is_live(s.value())) return s;
  const std::uint32_t limit = tree.vid_of(s).value();
  for (std::uint32_t v = limit; v-- > 0;) {
    const core::Pid p = tree.pid_of(core::Vid{v});
    if (live.is_live(p.value())) return p;
  }
  return std::nullopt;
}

// Same scenario as BM_FindLiveNode, resolved by the per-VID walk instead
// of the word-at-a-time scan. The regimes split: with most nodes live the
// walk terminates after ~1/(1-dead) probes and beats the scan's fixed
// permute cost; with sparse liveness (dead_pct=99, the churn/recovery
// case FINDLIVENODE exists for) the walk degenerates to hundreds of
// probes while the scan skips 64 dead VIDs per word fetch.
void BM_FindLiveNodeTreeWalk(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const double dead = static_cast<double>(state.range(1)) / 100.0;
  const core::LookupTree tree(m, core::Pid{1});
  const util::StatusWord live = make_live(m, dead, 3);
  if (find_live_tree_walk(tree, tree.root(), live) !=
      core::insertion_target(tree, live)) {
    state.SkipWithError("tree walk disagrees with the bit-scan");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        find_live_tree_walk(tree, tree.root(), live));
  }
}
BENCHMARK(BM_FindLiveNodeTreeWalk)
    ->ArgsProduct({{6, 10, 14}, {30, 99}})
    ->ArgNames({"m", "dead_pct"});

void BM_RouteGet(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const core::LookupTree tree(m, core::Pid{3});
  const util::StatusWord live = make_live(m, 0.1, 4);
  const auto holder = core::insertion_target(tree, live);
  const core::HasCopyFn has_copy = [&holder](core::Pid p) {
    return holder.has_value() && p == *holder;
  };
  std::uint32_t k = 0;
  const std::uint32_t slots = util::space_size(m);
  for (auto _ : state) {
    do {
      k = (k + 1u) & (slots - 1u);
    } while (!live.is_live(k));
    benchmark::DoNotOptimize(core::route_get(tree, core::Pid{k}, live,
                                             has_copy));
  }
}
BENCHMARK(BM_RouteGet)->Arg(6)->Arg(10)->Arg(14);

void BM_BuildAncestorTable(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const core::LookupTree tree(m, core::Pid{3});
  const util::StatusWord live = make_live(m, 0.1, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_ancestor_table(tree, live));
  }
}
BENCHMARK(BM_BuildAncestorTable)->Arg(6)->Arg(10)->Arg(14);

// The allocation-free counterpart of BM_RouteGet: same tree, liveness and
// copy placement, routed over the precomputed flat table.
void BM_RouteGetFlat(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const core::LookupTree tree(m, core::Pid{3});
  const util::StatusWord live = make_live(m, 0.1, 4);
  const core::AncestorTable table = core::build_ancestor_table(tree, live);
  const auto holder = core::insertion_target(tree, live);
  const std::uint32_t holder_pid =
      holder.has_value() ? holder->value() : 0xFFFFFFFFu;
  std::uint32_t k = 0;
  const std::uint32_t slots = util::space_size(m);
  for (auto _ : state) {
    do {
      k = (k + 1u) & (slots - 1u);
    } while (!live.is_live(k));
    int forwards = 0;
    benchmark::DoNotOptimize(core::route_get(
        table, core::Pid{k},
        [holder_pid](core::Pid p) { return p.value() == holder_pid; },
        [&forwards](core::Pid) { ++forwards; }));
    benchmark::DoNotOptimize(forwards);
  }
}
BENCHMARK(BM_RouteGetFlat)->Arg(6)->Arg(10)->Arg(14);

void BM_ReplicaPlacement(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const core::LookupTree tree(m, core::Pid{5});
  const util::StatusWord live = make_live(m, 0.1, 5);
  util::Rng rng(6);
  const core::HoldsCopyFn holds = [&tree](core::Pid p) {
    return p == tree.root();
  };
  const auto overloaded = core::insertion_target(tree, live);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::replicate_target(tree, *overloaded, live, holds, rng));
  }
}
BENCHMARK(BM_ReplicaPlacement)->Arg(6)->Arg(10)->Arg(14);

/// PID-striped synthetic file keys, the same shape the swarm mints
/// (client request ids stripe the high bits by home PID). `n` distinct
/// present keys; absent probes use a disjoint stripe.
std::vector<core::FileId> striped_keys(std::size_t n, std::uint64_t stripe) {
  std::vector<core::FileId> keys;
  keys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys.emplace_back((stripe << 32) + i);
  }
  return keys;
}

// FileStore's serve() on the slab-plus-flat-index layout, alternating a
// present and an absent key — the swarm's request hot path is mostly
// misses while a get forwards through intermediate nodes.
void BM_FileStoreServeArena(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  core::FileStore store;
  for (const core::FileId f : striped_keys(n, 3)) store.put_inserted(f, 1);
  const std::vector<core::FileId> hit = striped_keys(n, 3);
  const std::vector<core::FileId> miss = striped_keys(n, 9);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.serve(hit[i % n]));
    benchmark::DoNotOptimize(store.serve(miss[i % n]));
    ++i;
  }
}
BENCHMARK(BM_FileStoreServeArena)->Arg(4)->Arg(64)->Arg(1024);

// The same serve() workload against the std::unordered_map layout the
// store replaced: one heap node per copy, pointer-chased buckets. The gap
// to BM_FileStoreServeArena is the arena's contribution in isolation.
void BM_FileStoreServeMap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::unordered_map<core::FileId, core::CopyInfo> store;
  for (const core::FileId f : striped_keys(n, 3)) {
    core::CopyInfo info;
    info.version = 1;
    store.emplace(f, std::move(info));
  }
  const std::vector<core::FileId> hit = striped_keys(n, 3);
  const std::vector<core::FileId> miss = striped_keys(n, 9);
  const auto serve =
      [&store](core::FileId f) -> std::optional<std::uint64_t> {
    const auto it = store.find(f);
    if (it == store.end()) return std::nullopt;
    ++it->second.access_count;
    return it->second.version;
  };
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(serve(hit[i % n]));
    benchmark::DoNotOptimize(serve(miss[i % n]));
    ++i;
  }
}
BENCHMARK(BM_FileStoreServeMap)->Arg(4)->Arg(64)->Arg(1024);

void BM_ChordLookup(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const util::StatusWord live = make_live(m, 0.1, 7);
  const baseline::ChordRing ring(util::BorrowedView{live});
  util::Rng rng(8);
  const std::uint32_t slots = util::space_size(m);
  for (auto _ : state) {
    std::uint32_t from;
    do {
      from = static_cast<std::uint32_t>(rng.bounded(slots));
    } while (!live.is_live(from));
    const auto key = static_cast<std::uint32_t>(rng.bounded(slots));
    benchmark::DoNotOptimize(ring.lookup_hops(from, key));
  }
}
BENCHMARK(BM_ChordLookup)->Arg(6)->Arg(10)->Arg(14);

void BM_BalanceLoop(benchmark::State& state) {
  sim::ExperimentConfig cfg;
  cfg.m = static_cast<int>(state.range(0));
  cfg.total_rate = 10000.0;
  cfg.capacity = 100.0;
  cfg.solver = state.range(1) != 0 ? sim::SolverMode::kIncremental
                                   : sim::SolverMode::kScratch;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    benchmark::DoNotOptimize(
        sim::run_replication_experiment(cfg, baseline::lesslog_policy()));
  }
}
BENCHMARK(BM_BalanceLoop)
    ->ArgsProduct({{8, 10}, {0, 1}})
    ->ArgNames({"m", "incremental"});

bool results_equal(const sim::ExperimentResult& a,
                   const sim::ExperimentResult& b) {
  return a.replicas_created == b.replicas_created &&
         a.balanced == b.balanced &&
         a.irreducible_overload == b.irreducible_overload &&
         a.final_max_load == b.final_max_load &&
         a.mean_hops == b.mean_hops && a.fault_rate == b.fault_rate &&
         a.fairness == b.fairness && a.live_nodes == b.live_nodes;
}

// Differential gate: the incremental solver must reproduce the oracle's
// results bit for bit across workloads, dead fractions and b. Runs before
// any timing so a regression fails fast (and fails the perf_smoke test).
bool solvers_agree() {
  bool ok = true;
  for (const int b : {0, 2}) {
    for (const double dead : {0.0, 0.25}) {
      for (const sim::WorkloadKind wk :
           {sim::WorkloadKind::kUniform, sim::WorkloadKind::kLocality}) {
        for (const std::uint64_t seed : {1u, 2u}) {
          sim::ExperimentConfig cfg;
          cfg.m = 7;
          cfg.b = b;
          cfg.dead_fraction = dead;
          cfg.total_rate = 6000.0;
          cfg.capacity = 100.0;
          cfg.workload = wk;
          cfg.seed = seed;
          cfg.solver = sim::SolverMode::kScratch;
          const sim::ExperimentResult oracle =
              sim::run_replication_experiment(cfg,
                                              baseline::lesslog_policy());
          cfg.solver = sim::SolverMode::kIncremental;
          const sim::ExperimentResult fast =
              sim::run_replication_experiment(cfg,
                                              baseline::lesslog_policy());
          if (!results_equal(oracle, fast)) {
            std::cerr << "solver mismatch: b=" << b << " dead=" << dead
                      << " workload=" << static_cast<int>(wk)
                      << " seed=" << seed << " (oracle "
                      << oracle.replicas_created << " replicas / max "
                      << oracle.final_max_load << ", incremental "
                      << fast.replicas_created << " replicas / max "
                      << fast.final_max_load << ")\n";
            ok = false;
          }
        }
      }
    }
  }
  return ok;
}

// Times the full replicate-until-balanced loop under both solver modes
// and reports ns per balance-loop iteration in the shared row schema.
std::vector<bench::SolveRow> time_balance_loops(bool quick) {
  std::vector<bench::SolveRow> rows;
  const std::vector<int> widths = quick ? std::vector<int>{10}
                                        : std::vector<int>{10, 14};
  const int seeds = quick ? 1 : 3;
  for (const int m : widths) {
    for (const sim::SolverMode mode :
         {sim::SolverMode::kScratch, sim::SolverMode::kIncremental}) {
      sim::ExperimentConfig cfg;
      cfg.m = m;
      cfg.total_rate = 10000.0;
      cfg.capacity = 100.0;
      cfg.solver = mode;
      const bench::CellTiming t = bench::mean_replicas_timed(
          cfg, baseline::lesslog_policy(), seeds);
      const std::string policy =
          mode == sim::SolverMode::kScratch ? "lesslog/scratch"
                                            : "lesslog/incremental";
      rows.push_back(bench::SolveRow{"micro_balance_loop", m, 10000.0,
                                     policy, t.ns_per_solve,
                                     t.mean_replicas});
      std::cout << "balance loop m=" << m << " solver="
                << (mode == sim::SolverMode::kScratch ? "scratch"
                                                      : "incremental")
                << ": " << t.ns_per_solve << " ns/solve, "
                << t.mean_replicas << " replicas\n";
    }
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::optional<std::string> json_path;
  std::vector<char*> bench_argv;
  bench_argv.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      bench_argv.push_back(argv[i]);
    }
  }
  std::string min_time = "--benchmark_min_time=0.01";
  if (quick) bench_argv.push_back(min_time.data());

  if (!solvers_agree()) return 1;
  std::cout << "incremental solver matches the from-scratch oracle on the "
               "differential grid\n";

  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<bench::SolveRow> rows = time_balance_loops(quick);
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - t0)
                             .count();
  if (json_path.has_value()) {
    bench::BenchArgs meta;
    meta.quick = quick;
    meta.seeds = quick ? 1 : 3;
    bench::write_json(*json_path, meta, rows, wall_ms);
  }

  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_argv.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
