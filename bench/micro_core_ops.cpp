// Micro-benchmarks (google-benchmark) for the bit-level primitives the
// paper's pitch rests on: replica placement and routing decisions must be
// a handful of bitwise operations, not log analysis. These numbers put
// concrete costs on each primitive.
#include <benchmark/benchmark.h>

#include "lesslog/baseline/chord.hpp"
#include "lesslog/core/children_list.hpp"
#include "lesslog/core/find_live_node.hpp"
#include "lesslog/core/replication.hpp"
#include "lesslog/core/routing.hpp"
#include "lesslog/util/rng.hpp"

namespace {

using namespace lesslog;

util::StatusWord make_live(int m, double dead_fraction, std::uint64_t seed) {
  util::StatusWord live(m, util::space_size(m));
  util::Rng rng(seed);
  const auto dead = static_cast<std::uint32_t>(
      dead_fraction * static_cast<double>(util::space_size(m)));
  for (std::uint32_t p : rng.sample_indices(util::space_size(m), dead)) {
    live.set_dead(p);
  }
  return live;
}

void BM_LeadingOnes(benchmark::State& state) {
  std::uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::leading_ones(v, 10));
    v = (v + 0x9e37u) & util::mask_of(10);
  }
}
BENCHMARK(BM_LeadingOnes);

void BM_ParentVid(benchmark::State& state) {
  std::uint32_t v = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::set_highest_zero(v | 1u, 10));
    v = (v + 0x9e37u) & (util::mask_of(10) >> 1);
  }
}
BENCHMARK(BM_ParentVid);

void BM_VidPidConversion(benchmark::State& state) {
  const core::IdMapper mapper(10, core::Pid{517});
  std::uint32_t p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mapper.vid_of(core::Pid{p}));
    p = (p + 1u) & util::mask_of(10);
  }
}
BENCHMARK(BM_VidPidConversion);

void BM_ChildrenList(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const core::LookupTree tree(m, core::Pid{1});
  const util::StatusWord live = make_live(m, 0.0, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::children_list(tree, tree.root(), live));
  }
}
BENCHMARK(BM_ChildrenList)->Arg(6)->Arg(10)->Arg(14);

void BM_ChildrenListDeadNodes(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const core::LookupTree tree(m, core::Pid{1});
  const util::StatusWord live = make_live(m, 0.3, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::children_list(tree, tree.root(), live));
  }
}
BENCHMARK(BM_ChildrenListDeadNodes)->Arg(6)->Arg(10)->Arg(14);

void BM_FindLiveNode(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const core::LookupTree tree(m, core::Pid{1});
  const util::StatusWord live = make_live(m, 0.3, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::insertion_target(tree, live));
  }
}
BENCHMARK(BM_FindLiveNode)->Arg(6)->Arg(10)->Arg(14);

void BM_RouteGet(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const core::LookupTree tree(m, core::Pid{3});
  const util::StatusWord live = make_live(m, 0.1, 4);
  const auto holder = core::insertion_target(tree, live);
  const core::HasCopyFn has_copy = [&holder](core::Pid p) {
    return holder.has_value() && p == *holder;
  };
  std::uint32_t k = 0;
  const std::uint32_t slots = util::space_size(m);
  for (auto _ : state) {
    do {
      k = (k + 1u) & (slots - 1u);
    } while (!live.is_live(k));
    benchmark::DoNotOptimize(core::route_get(tree, core::Pid{k}, live,
                                             has_copy));
  }
}
BENCHMARK(BM_RouteGet)->Arg(6)->Arg(10)->Arg(14);

void BM_ReplicaPlacement(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const core::LookupTree tree(m, core::Pid{5});
  const util::StatusWord live = make_live(m, 0.1, 5);
  util::Rng rng(6);
  const core::HoldsCopyFn holds = [&tree](core::Pid p) {
    return p == tree.root();
  };
  const auto overloaded = core::insertion_target(tree, live);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::replicate_target(tree, *overloaded, live, holds, rng));
  }
}
BENCHMARK(BM_ReplicaPlacement)->Arg(6)->Arg(10)->Arg(14);

void BM_ChordLookup(benchmark::State& state) {
  const int m = static_cast<int>(state.range(0));
  const util::StatusWord live = make_live(m, 0.1, 7);
  const baseline::ChordRing ring(live);
  util::Rng rng(8);
  const std::uint32_t slots = util::space_size(m);
  for (auto _ : state) {
    std::uint32_t from;
    do {
      from = static_cast<std::uint32_t>(rng.bounded(slots));
    } while (!live.is_live(from));
    const auto key = static_cast<std::uint32_t>(rng.bounded(slots));
    benchmark::DoNotOptimize(ring.lookup_hops(from, key));
  }
}
BENCHMARK(BM_ChordLookup)->Arg(6)->Arg(10)->Arg(14);

}  // namespace

BENCHMARK_MAIN();
