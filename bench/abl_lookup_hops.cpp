// Ablation A2 — lookup cost vs. system size: LessLog's binomial tree
// against Chord's finger-table routing (the related-work lookup the paper
// cites). Both are O(log N); the ablation quantifies the constants on the
// same node populations, full and with 30% dead slots.
#include "bench_common.hpp"

#include "lesslog/baseline/chord.hpp"
#include "lesslog/baseline/plaxton.hpp"
#include "lesslog/core/routing.hpp"
#include "lesslog/util/rng.hpp"

namespace {

using namespace lesslog;

struct HopStats {
  double lesslog_mean = 0.0;
  int lesslog_max = 0;
  double chord_mean = 0.0;
  int chord_max = 0;
  double plaxton_mean = 0.0;
};

HopStats measure(int m, double dead_fraction, std::uint64_t seed,
                 int trials) {
  util::Rng rng(seed);
  const std::uint32_t slots = util::space_size(m);
  util::StatusWord live(m, slots);
  const auto dead_count = static_cast<std::uint32_t>(
      dead_fraction * static_cast<double>(slots));
  for (std::uint32_t dead : rng.sample_indices(slots, dead_count)) {
    live.set_dead(dead);
  }
  const baseline::ChordRing ring(util::BorrowedView{live});
  const baseline::PlaxtonMesh mesh(util::BorrowedView{live}, /*bits_per_digit=*/2);

  HopStats stats;
  double lesslog_total = 0.0;
  double chord_total = 0.0;
  double plaxton_total = 0.0;
  int done = 0;
  while (done < trials) {
    const auto from = static_cast<std::uint32_t>(rng.bounded(slots));
    const auto target = static_cast<std::uint32_t>(rng.bounded(slots));
    if (!live.is_live(from)) continue;
    ++done;
    // LessLog: walk to the file holder in the tree of `target`.
    const core::LookupTree tree(m, core::Pid{target});
    const auto holder = core::insertion_target(tree, live);
    const core::RouteResult r = core::route_get(
        tree, core::Pid{from}, live,
        [&holder](core::Pid p) { return holder.has_value() && p == *holder; });
    lesslog_total += r.hops();
    stats.lesslog_max = std::max(stats.lesslog_max, r.hops());
    // Chord: finger routing to the successor of the key.
    const int hops = ring.lookup_hops(from, target);
    chord_total += hops;
    stats.chord_max = std::max(stats.chord_max, hops);
    // Plaxton/Pastry-style prefix routing (base 4).
    plaxton_total += mesh.lookup_hops(from, target);
  }
  stats.lesslog_mean = lesslog_total / trials;
  stats.chord_mean = chord_total / trials;
  stats.plaxton_mean = plaxton_total / trials;
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lesslog;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const int trials = args.quick ? 2000 : 20000;
  const std::vector<int> widths = args.quick
                                      ? std::vector<int>{6, 10, 14}
                                      : std::vector<int>{4, 6, 8, 10, 12, 14,
                                                         16};

  std::cout << "== Ablation A2: lookup hops, LessLog tree vs Chord fingers "
               "==\n"
            << "trials per cell = " << trials << "\n\n";

  for (const double dead : {0.0, 0.3}) {
    std::vector<double> xs;
    xs.reserve(widths.size());
    for (int m : widths) xs.push_back(static_cast<double>(m));
    sim::FigureData fig(
        "A2 mean lookup hops (" +
            std::to_string(static_cast<int>(dead * 100)) + "% dead)",
        "m (N = 2^m)", xs);
    std::vector<double> ll;
    std::vector<double> ch;
    std::vector<double> px;
    std::vector<double> ll_max;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const HopStats s = measure(widths[i], dead, 1000 + i, trials);
      ll.push_back(s.lesslog_mean);
      ch.push_back(s.chord_mean);
      px.push_back(s.plaxton_mean);
      ll_max.push_back(static_cast<double>(s.lesslog_max));
    }
    fig.add_series("lesslog mean", std::move(ll));
    fig.add_series("chord mean", std::move(ch));
    fig.add_series("plaxton-b4 mean", std::move(px));
    fig.add_series("lesslog max", std::move(ll_max));
    bench::emit(fig, args);

    bool bounded = true;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      bounded = bounded &&
                fig.find("lesslog max")->values[i] <=
                    static_cast<double>(widths[i]) + 1.0;
    }
    bench::check(bounded, "LessLog lookups never exceed m (+1 stand-in) hops");
    bench::check(fig.roughly_increasing("lesslog mean", 0.2),
                 "mean hops grow ~logarithmically with N");
  }
  return 0;
}
