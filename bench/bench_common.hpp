// Shared scaffolding for the figure-reproduction benches.
//
// Every bench binary:
//   * runs the paper's full-scale parameters by default (m = 10, capacity
//     100 req/s, request rates 1,000..20,000),
//   * accepts --quick (coarser sweep for smoke runs), --seeds N (averaging
//     width), and --csv <path> (mirror the table to CSV),
//   * prints the parameter block, the per-rate table, an ASCII chart, and
//     the shape checks corresponding to the paper's claims.
#pragma once

#include <cstdint>
#include <iostream>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "lesslog/sim/experiment.hpp"
#include "lesslog/sim/metrics.hpp"
#include "lesslog/util/thread_pool.hpp"

namespace lesslog::bench {

struct BenchArgs {
  bool quick = false;
  int seeds = 5;
  std::optional<std::string> csv;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        args.quick = true;
      } else if (arg == "--seeds" && i + 1 < argc) {
        args.seeds = std::stoi(argv[++i]);
      } else if (arg == "--csv" && i + 1 < argc) {
        args.csv = argv[++i];
      } else {
        std::cerr << "usage: bench [--quick] [--seeds N] [--csv path]\n";
        std::exit(2);
      }
    }
    return args;
  }
};

/// The paper's x axis: 1,000..20,000 requests/s ("incoming requests/1000"
/// from 1 to 20). --quick keeps every fourth point.
inline std::vector<double> paper_rates(bool quick) {
  std::vector<double> rates;
  for (int k = 1; k <= 20; ++k) {
    if (!quick || k % 4 == 0) rates.push_back(1000.0 * k);
  }
  return rates;
}

/// The paper's fixed parameters (Section 6): m = 10, b = 0, capacity 100.
inline sim::ExperimentConfig paper_config() {
  sim::ExperimentConfig cfg;
  cfg.m = 10;
  cfg.b = 0;
  cfg.capacity = 100.0;
  return cfg;
}

/// Replicas-to-balance for one (config, policy) cell averaged over seeds
/// 1..seeds; cells that end irreducibly overloaded still report their
/// replica count (the system sheds everything sheddable first).
inline double mean_replicas(const sim::ExperimentConfig& base,
                            const sim::PlacementFn& policy, int seeds,
                            int* unbalanced_cells = nullptr) {
  double total = 0.0;
  for (int seed = 1; seed <= seeds; ++seed) {
    sim::ExperimentConfig cfg = base;
    cfg.seed = static_cast<std::uint64_t>(seed);
    const sim::ExperimentResult r =
        sim::run_replication_experiment(cfg, policy);
    total += r.replicas_created;
    if (!r.balanced && unbalanced_cells != nullptr) ++(*unbalanced_cells);
  }
  return total / seeds;
}

/// Fills one series of a figure in parallel over the x axis.
inline std::vector<double> sweep_series(
    util::ThreadPool& pool, const std::vector<double>& rates,
    const sim::ExperimentConfig& base, const sim::PlacementFn& policy,
    int seeds) {
  std::vector<double> ys(rates.size(), 0.0);
  util::parallel_for(pool, rates.size(), [&](std::size_t i) {
    sim::ExperimentConfig cfg = base;
    cfg.total_rate = rates[i];
    ys[i] = mean_replicas(cfg, policy, seeds);
  });
  return ys;
}

inline void print_header(const std::string& title,
                         const sim::ExperimentConfig& cfg,
                         const BenchArgs& args) {
  std::cout << "== " << title << " ==\n"
            << "m=" << cfg.m << " (" << util::space_size(cfg.m)
            << " ID slots), b=" << cfg.b << ", capacity=" << cfg.capacity
            << " req/s, seeds averaged=" << args.seeds << "\n\n";
}

inline void emit(const sim::FigureData& fig, const BenchArgs& args,
                 int precision = 1) {
  util::Table table = fig.to_table();
  table.set_precision(precision);
  std::cout << table.render() << "\n" << fig.ascii_chart() << "\n";
  if (args.csv.has_value()) {
    fig.write_csv(*args.csv);
    std::cout << "csv written to " << *args.csv << "\n";
  }
}

inline void check(bool ok, const std::string& claim) {
  std::cout << (ok ? "[shape OK]   " : "[shape FAIL] ") << claim << "\n";
}

}  // namespace lesslog::bench
