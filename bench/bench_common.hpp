// Shared scaffolding for the figure-reproduction benches.
//
// Every bench binary:
//   * runs the paper's full-scale parameters by default (m = 10, capacity
//     100 req/s, request rates 1,000..20,000),
//   * accepts --quick (coarser sweep for smoke runs), --seeds N (averaging
//     width), --csv <path> (mirror the table to CSV), --json <path>
//     (machine-readable rows with per-solve timings), --m N (ID-space
//     width override), --solver scratch|incremental (which load solver
//     drives the balance loop), and --threads N (worker threads for
//     parallel cells; 0 = hardware concurrency),
//   * prints the parameter block, the per-rate table, an ASCII chart, and
//     the shape checks corresponding to the paper's claims.
#pragma once

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "bench_schema.hpp"
#include "lesslog/obs/export.hpp"
#include "lesslog/sim/experiment.hpp"
#include "lesslog/sim/metrics.hpp"
#include "lesslog/util/thread_pool.hpp"

namespace lesslog::bench {

struct BenchArgs {
  bool quick = false;
  /// Tiny pass/fail cell instead of the sweep (wire benches only).
  bool smoke = false;
  int seeds = 5;
  /// Worker threads for parallel bench cells; 0 means hardware
  /// concurrency (the ThreadPool default).
  int threads = 0;
  std::optional<std::string> csv;
  std::optional<std::string> json;
  /// Observability export: "json" or "csv" ("lesslog.metrics" v1
  /// documents; json output is validated back before the bench exits).
  std::optional<std::string> metrics;
  /// Destination for --metrics; stdout when unset.
  std::optional<std::string> metrics_out;
  std::optional<int> m;
  /// Engine shards for the sharded-swarm benches (abl_scale); other
  /// benches ignore it. 1 = the serial engine.
  int shards = 1;
  sim::SolverMode solver = sim::SolverMode::kIncremental;
  /// Wall-time regression gate (milliseconds) on the bench's timed
  /// region; exceeded = nonzero exit. See enforce_wall_gate().
  std::optional<int> max_wall_ms;

  [[noreturn]] static void usage_exit() {
    std::cerr << "usage: bench [--quick] [--smoke] [--seeds N] "
                 "[--threads N] [--csv path] [--json path] "
                 "[--metrics json|csv] [--metrics-out path] [--m N] "
                 "[--shards N] [--solver scratch|incremental] "
                 "[--max-wall-ms N]\n";
    std::exit(2);
  }

  /// Strict integer parse for flag values: rejects garbage, trailing
  /// text, and values outside [low, limit] instead of throwing or
  /// silently accepting them (std::stoi would throw on "foo" and accept
  /// "-3").
  static int parse_bounded_int(const char* flag, const char* text,
                               long limit, long low = 1) {
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(text, &end, 10);
    if (errno != 0 || end == text || *end != '\0' || value < low ||
        value > limit) {
      std::cerr << flag << " expects an integer in [" << low << ", "
                << limit << "], got '" << text << "'\n";
      usage_exit();
    }
    return static_cast<int>(value);
  }

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--quick") {
        args.quick = true;
      } else if (arg == "--smoke") {
        args.smoke = true;
      } else if (arg == "--metrics" && i + 1 < argc) {
        const std::string format = argv[++i];
        if (format != "json" && format != "csv") {
          std::cerr << "--metrics expects 'json' or 'csv', got '" << format
                    << "'\n";
          usage_exit();
        }
        args.metrics = format;
      } else if (arg == "--metrics-out" && i + 1 < argc) {
        args.metrics_out = argv[++i];
      } else if (arg == "--seeds" && i + 1 < argc) {
        args.seeds = parse_bounded_int("--seeds", argv[++i], 10000);
      } else if (arg == "--threads" && i + 1 < argc) {
        args.threads =
            parse_bounded_int("--threads", argv[++i], 4096, /*low=*/0);
      } else if (arg == "--csv" && i + 1 < argc) {
        args.csv = argv[++i];
      } else if (arg == "--json" && i + 1 < argc) {
        args.json = argv[++i];
      } else if (arg == "--m" && i + 1 < argc) {
        args.m = parse_bounded_int("--m", argv[++i], util::kMaxIdBits);
      } else if (arg == "--shards" && i + 1 < argc) {
        args.shards = parse_bounded_int("--shards", argv[++i], 4096);
      } else if (arg == "--max-wall-ms" && i + 1 < argc) {
        args.max_wall_ms =
            parse_bounded_int("--max-wall-ms", argv[++i], 100000000);
      } else if (arg == "--solver" && i + 1 < argc) {
        const std::string mode = argv[++i];
        if (mode == "scratch") {
          args.solver = sim::SolverMode::kScratch;
        } else if (mode == "incremental") {
          args.solver = sim::SolverMode::kIncremental;
        } else {
          std::cerr << "--solver expects 'scratch' or 'incremental', got '"
                    << mode << "'\n";
          usage_exit();
        }
      } else {
        usage_exit();
      }
    }
    return args;
  }

  /// Applies the command-line overrides to a figure's base config.
  void apply(sim::ExperimentConfig& cfg) const {
    if (m.has_value()) cfg.m = *m;
    cfg.solver = solver;
  }

  [[nodiscard]] const char* solver_name() const {
    return solver == sim::SolverMode::kScratch ? "scratch" : "incremental";
  }
};

/// The paper's x axis: 1,000..20,000 requests/s ("incoming requests/1000"
/// from 1 to 20). --quick keeps every fourth point.
inline std::vector<double> paper_rates(bool quick) {
  std::vector<double> rates;
  for (int k = 1; k <= 20; ++k) {
    if (!quick || k % 4 == 0) rates.push_back(1000.0 * k);
  }
  return rates;
}

/// The paper's fixed parameters (Section 6): m = 10, b = 0, capacity 100.
inline sim::ExperimentConfig paper_config() {
  sim::ExperimentConfig cfg;
  cfg.m = 10;
  cfg.b = 0;
  cfg.capacity = 100.0;
  return cfg;
}

/// One machine-readable result row: a (figure, rate, policy) cell with
/// its mean replica count and the wall time per balance-loop iteration
/// (one load solve plus one placement decision).
struct SolveRow {
  std::string bench;
  int m = 0;
  double rate = 0.0;
  std::string policy;
  double ns_per_solve = 0.0;
  double replicas = 0.0;
};

/// Serializes a document and verifies its own bytes parse back to the
/// same value — the write path and parse path police each other on every
/// bench run, not just in the round-trip test.
inline void write_schema_checked(const std::string& path,
                                 const JsonSchema& doc) {
  std::ostringstream body;
  doc.write(body);
  const std::optional<JsonSchema> back = JsonSchema::parse(body.str());
  if (!back || *back != doc) {
    std::cerr << "internal error: bench json failed its own round-trip\n";
    std::exit(2);
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "cannot write json to " << path << "\n";
    std::exit(2);
  }
  out << body.str();
  std::cout << "json written to " << path << "\n";
}

/// Writes solve-family rows as one "lesslog.bench" v1 document (see
/// bench_schema.hpp for the shape). Solve cells average seeds 1..N, so
/// the document carries `seeds` and leaves `seed` at 0.
inline void write_json(const std::string& path, const BenchArgs& args,
                       const std::vector<SolveRow>& rows, double wall_ms) {
  JsonSchema doc;
  doc.bench = rows.empty() ? "solve" : rows.front().bench;
  doc.family = "solve";
  doc.seeds = args.seeds;
  doc.threads = args.threads;
  doc.quick = args.quick;
  doc.solver = args.solver_name();
  doc.wall_ms = wall_ms;
  for (const SolveRow& r : rows) {
    SchemaRow row;
    row.bench = r.bench;
    row.cell = "m=" + std::to_string(r.m) +
               ",rate=" + std::to_string(static_cast<long>(r.rate)) +
               ",policy=" + r.policy;
    row.tags.emplace_back("policy", r.policy);
    row.metrics.emplace_back("m", static_cast<double>(r.m));
    row.metrics.emplace_back("rate", r.rate);
    row.metrics.emplace_back("ns_per_solve", r.ns_per_solve);
    row.metrics.emplace_back("replicas", r.replicas);
    doc.rows.push_back(std::move(row));
  }
  write_schema_checked(path, doc);
}

/// Runs `n` independent bench cells on a thread pool and returns the
/// results gathered in cell-index order. Each cell owns its Swarm/Engine,
/// so cells share nothing; collecting by index makes the output (and any
/// downstream float summation done in index order) byte-identical for
/// every --threads value, including 1.
template <typename Fn>
auto run_cells_parallel(int threads, std::size_t n, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  std::vector<decltype(fn(std::size_t{0}))> out(n);
  util::ThreadPool pool(threads <= 0 ? 0U : static_cast<unsigned>(threads));
  util::parallel_for(pool, n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// One machine-readable row from a packet-level (wire) bench: a named
/// cell with its scalar outputs as (name, value) pairs.
struct WireRow {
  std::string bench;
  std::string cell;
  std::vector<std::pair<std::string, double>> values;
};

/// Writes wire-bench rows as one "lesslog.bench" v1 document. Wire cells
/// run at one fixed base seed, carried in `seed`.
inline void write_wire_json(const std::string& path, const BenchArgs& args,
                            const std::vector<WireRow>& rows,
                            double wall_ms, std::uint64_t seed = 42) {
  JsonSchema doc;
  doc.bench = rows.empty() ? "wire" : rows.front().bench;
  doc.family = "wire";
  doc.seed = seed;
  doc.threads = args.threads;
  doc.quick = args.quick;
  doc.wall_ms = wall_ms;
  for (const WireRow& r : rows) {
    SchemaRow row;
    row.bench = r.bench;
    row.cell = r.cell;
    row.metrics = r.values;
    doc.rows.push_back(std::move(row));
  }
  write_schema_checked(path, doc);
}

/// Emits the --metrics document ("lesslog.metrics" v1) to --metrics-out
/// (stdout when unset). JSON output is validated back against the schema
/// before anything is written; a violation is a hard bench failure, which
/// is what lets a ctest validate the export with a single bench
/// invocation. Returns 0 on success (shell exit-code convention).
inline int emit_metrics(const BenchArgs& args, const std::string& source,
                        std::uint64_t seed, const obs::Snapshot& snapshot,
                        const obs::TimeSeries* series = nullptr) {
  if (!args.metrics.has_value()) return 0;
  std::ostringstream body;
  if (*args.metrics == "json") {
    obs::write_metrics_json(body, snapshot, source, seed, series);
    const std::string error = obs::validate_metrics_json(body.str());
    if (!error.empty()) {
      std::cerr << "metrics schema violation: " << error << "\n";
      return 1;
    }
  } else {
    obs::write_metrics_csv(body, snapshot, source, seed, series);
  }
  if (args.metrics_out.has_value()) {
    std::ofstream out(*args.metrics_out);
    if (!out) {
      std::cerr << "cannot write metrics to " << *args.metrics_out << "\n";
      return 1;
    }
    out << body.str();
    std::cout << "metrics written to " << *args.metrics_out << "\n";
  } else {
    std::cout << body.str();
  }
  return 0;
}

/// Replicas-to-balance for one (config, policy) cell averaged over seeds
/// 1..seeds; cells that end irreducibly overloaded still report their
/// replica count (the system sheds everything sheddable first).
inline double mean_replicas(const sim::ExperimentConfig& base,
                            const sim::PlacementFn& policy, int seeds,
                            int* unbalanced_cells = nullptr) {
  double total = 0.0;
  for (int seed = 1; seed <= seeds; ++seed) {
    sim::ExperimentConfig cfg = base;
    cfg.seed = static_cast<std::uint64_t>(seed);
    const sim::ExperimentResult r =
        sim::run_replication_experiment(cfg, policy);
    total += r.replicas_created;
    if (!r.balanced && unbalanced_cells != nullptr) ++(*unbalanced_cells);
  }
  return total / seeds;
}

/// mean_replicas plus wall-clock accounting: ns_per_solve is the cell's
/// wall time divided by the number of balance-loop iterations it ran
/// (replicas_created + 1 solves per seed — the final iteration solves
/// without placing).
struct CellTiming {
  double mean_replicas = 0.0;
  double ns_per_solve = 0.0;
};

inline CellTiming mean_replicas_timed(const sim::ExperimentConfig& base,
                                      const sim::PlacementFn& policy,
                                      int seeds) {
  double total = 0.0;
  std::int64_t solves = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (int seed = 1; seed <= seeds; ++seed) {
    sim::ExperimentConfig cfg = base;
    cfg.seed = static_cast<std::uint64_t>(seed);
    const sim::ExperimentResult r =
        sim::run_replication_experiment(cfg, policy);
    total += r.replicas_created;
    solves += r.replicas_created + 1;
  }
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  CellTiming out;
  out.mean_replicas = total / seeds;
  out.ns_per_solve =
      solves > 0 ? static_cast<double>(ns) / static_cast<double>(solves) : 0.0;
  return out;
}

/// Fills one series of a figure in parallel over the x axis.
inline std::vector<double> sweep_series(
    util::ThreadPool& pool, const std::vector<double>& rates,
    const sim::ExperimentConfig& base, const sim::PlacementFn& policy,
    int seeds) {
  std::vector<double> ys(rates.size(), 0.0);
  util::parallel_for(pool, rates.size(), [&](std::size_t i) {
    sim::ExperimentConfig cfg = base;
    cfg.total_rate = rates[i];
    ys[i] = mean_replicas(cfg, policy, seeds);
  });
  return ys;
}

/// sweep_series that also appends one timed SolveRow per rate point.
inline std::vector<double> sweep_series_timed(
    util::ThreadPool& pool, const std::vector<double>& rates,
    const sim::ExperimentConfig& base, const sim::PlacementFn& policy,
    int seeds, const std::string& bench_name, const std::string& policy_name,
    std::vector<SolveRow>& rows) {
  std::vector<double> ys(rates.size(), 0.0);
  std::vector<SolveRow> local(rates.size());
  util::parallel_for(pool, rates.size(), [&](std::size_t i) {
    sim::ExperimentConfig cfg = base;
    cfg.total_rate = rates[i];
    const CellTiming t = mean_replicas_timed(cfg, policy, seeds);
    ys[i] = t.mean_replicas;
    local[i] = SolveRow{bench_name,  cfg.m,           rates[i],
                        policy_name, t.ns_per_solve, t.mean_replicas};
  });
  rows.insert(rows.end(), local.begin(), local.end());
  return ys;
}

inline void print_header(const std::string& title,
                         const sim::ExperimentConfig& cfg,
                         const BenchArgs& args) {
  std::cout << "== " << title << " ==\n"
            << "m=" << cfg.m << " (" << util::space_size(cfg.m)
            << " ID slots), b=" << cfg.b << ", capacity=" << cfg.capacity
            << " req/s, seeds averaged=" << args.seeds
            << ", solver=" << args.solver_name() << "\n\n";
}

inline void emit(const sim::FigureData& fig, const BenchArgs& args,
                 int precision = 1) {
  util::Table table = fig.to_table();
  table.set_precision(precision);
  std::cout << table.render() << "\n" << fig.ascii_chart() << "\n";
  if (args.csv.has_value()) {
    fig.write_csv(*args.csv);
    std::cout << "csv written to " << *args.csv << "\n";
  }
}

inline void check(bool ok, const std::string& claim) {
  std::cout << (ok ? "[shape OK]   " : "[shape FAIL] ") << claim << "\n";
}

/// Enforces --max-wall-ms over the bench's timed region; the return value
/// is the process exit code (0 pass, 1 fail). Thresholds are set an order
/// of magnitude above an expected run, so the gate trips on structural
/// regressions (a solver silently falling back to scratch, an O(n) path
/// going quadratic) while staying deaf to machine noise. No-op when the
/// flag is absent.
[[nodiscard]] inline int enforce_wall_gate(const BenchArgs& args,
                                           double wall_ms) {
  if (!args.max_wall_ms.has_value()) return 0;
  const bool ok = wall_ms <= static_cast<double>(*args.max_wall_ms);
  std::cout << (ok ? "[wall OK]    " : "[wall FAIL]  ") << wall_ms
            << " ms against the " << *args.max_wall_ms
            << " ms --max-wall-ms gate\n";
  return ok ? 0 : 1;
}

}  // namespace lesslog::bench
