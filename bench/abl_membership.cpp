// Ablation A13 — SWIM membership: detection latency and false-suspicion
// curves for the gossip failure detector, swept over fault intensity
// under two chaos plans (churn: crash/restart/depart/join; partition:
// crash/restart under windowed network splits).
//
// Every cell uses the membership-only configuration: no catalog
// (files = 0), no GET workload (get_rate = 0), zero per-hop latency
// jitter. The driver substitutes a deterministic per-link stagger for
// the jitter, so delivery order is a pure function of the config and
// every plan — churn, partition, AND lossy — reproduces bit-identically
// at any shard count: the curves are exact, not sampled. (Lossy joined
// the club when the Gilbert–Elliott chains moved to per-link-per-seed
// RNG streams; each link's loss pattern is now a pure function of its
// own datagram count, which shard layout never permutes.)
//
// --smoke is the membership_smoke ctest gate:
//   * a churn+partition cell must audit clean, converge the detector in
//     every epoch, and actually detect crashes (nonzero latency samples);
//   * the same cell rerun, and rerun at S = 4, must reproduce the whole
//     detector ledger bit-identically (same_outcome covers the SWIM
//     tallies and every latency sample);
//   * a lossy cell must reproduce bit-identically across S ∈ {1, 2, 4}
//     — the per-link chain scoping pin;
//   * the oracle path (swim = false, same geometry) must stay clean and
//     replay bit-identically from its JSON artifact — the pin that the
//     LivenessView seam left ground-truth liveness untouched.
#include <algorithm>
#include <chrono>
#include <numeric>

#include "bench_common.hpp"

#include "lesslog/chaos/driver.hpp"
#include "lesslog/chaos/replay.hpp"

namespace {

using namespace lesslog;

struct Plan {
  const char* name;
  bool churn;
  bool partitions;
  bool bursts;
};

// churn keeps the wire clean (membership motion only — the flat-curve
// control: op counts do not scale with intensity). partition gates on
// intensity but its geometry does not scale with it (a step, not a
// slope). bursts is the class whose loss probabilities genuinely scale
// with intensity, so "lossy" is the plan where the false-suspicion
// curve actually climbs.
constexpr Plan kPlans[] = {
    {"churn", true, false, false},
    {"partition", false, true, false},
    {"lossy", false, false, true},
};

chaos::ChaosConfig membership_config(bool quick, const Plan& plan,
                                     double intensity, std::uint64_t seed,
                                     std::size_t shards) {
  chaos::ChaosConfig cfg;
  cfg.m = 6;
  cfg.b = 2;
  cfg.nodes = 40;
  cfg.seed = seed;
  cfg.epochs = quick ? 3 : 4;
  cfg.epoch_length = 30.0;
  cfg.fault_intensity = intensity;
  // Membership-only: no catalog, no workload, no latency jitter. With
  // every shard-seeded randomness consumer gone, the cell is the same
  // trajectory at any shard count.
  cfg.files = 0;
  cfg.get_rate = 0.0;
  cfg.net_jitter = 0.0;
  cfg.swim = true;
  cfg.shards = shards;
  // Both plans keep crashes (the detection-latency signal); everything
  // else off except the plan's own fault class.
  cfg.bursts = plan.bursts;
  cfg.corruption = false;
  cfg.duplicates = false;
  cfg.delay_spikes = false;
  cfg.crashes = true;
  cfg.churn = plan.churn;
  cfg.partitions = plan.partitions;
  return cfg;
}

struct Cell {
  double detect_mean = 0.0;   ///< mean crash -> first true confirm (s)
  double detect_max = 0.0;
  double detections = 0.0;    ///< crashes whose detection completed
  double suspects = 0.0;
  double false_suspects = 0.0;     ///< suspicions raised on live nodes
  double false_suspect_pct = 0.0;
  double false_confirms = 0.0;
  double conv_rounds = 0.0;   ///< mean extra periods to re-converge
  double conv_failures = 0.0; ///< epochs that hit the round cap
  double violations = 0.0;
};

Cell run_cell(bool quick, const Plan& plan, double intensity,
              std::uint64_t seed, std::size_t shards) {
  chaos::Driver driver(
      membership_config(quick, plan, intensity, seed, shards));
  const chaos::Report r = driver.run();
  Cell cell;
  cell.violations = static_cast<double>(r.violations.size());
  if (!r.detection_latency.empty()) {
    cell.detections = static_cast<double>(r.detection_latency.size());
    cell.detect_mean = std::accumulate(r.detection_latency.begin(),
                                       r.detection_latency.end(), 0.0) /
                       cell.detections;
    cell.detect_max = *std::max_element(r.detection_latency.begin(),
                                        r.detection_latency.end());
  }
  cell.suspects = static_cast<double>(r.swim.suspects);
  cell.false_suspects = static_cast<double>(r.swim.false_suspects);
  cell.false_suspect_pct =
      r.swim.suspects > 0
          ? 100.0 * static_cast<double>(r.swim.false_suspects) /
                static_cast<double>(r.swim.suspects)
          : 0.0;
  cell.false_confirms = static_cast<double>(r.swim.false_confirms);
  for (const chaos::SwimEpochStats& e : r.swim_epochs) {
    cell.conv_rounds += static_cast<double>(e.rounds);
    if (!e.converged) cell.conv_failures += 1.0;
  }
  if (!r.swim_epochs.empty()) {
    cell.conv_rounds /= static_cast<double>(r.swim_epochs.size());
  }
  return cell;
}

/// The membership_smoke ctest gate (see file header).
int run_smoke(const bench::BenchArgs& args) {
  const Plan both{"churn+partition", true, true, false};
  chaos::ChaosConfig cfg =
      membership_config(/*quick=*/true, both, 0.6, 1, /*shards=*/1);
  chaos::Driver driver(cfg);
  const chaos::Report first = driver.run();
  bool converged = !first.swim_epochs.empty();
  for (const chaos::SwimEpochStats& e : first.swim_epochs) {
    converged = converged && e.converged;
  }
  const bool detect_ok =
      first.clean() && converged && !first.detection_latency.empty();

  // Determinism: the whole detector ledger (tallies, every latency
  // sample) must reproduce across reruns and across shard counts.
  const bool rerun_ok = chaos::same_outcome(first, chaos::Driver(cfg).run());
  chaos::ChaosConfig cfg4 = cfg;
  cfg4.shards = 4;
  const bool shard_ok =
      chaos::same_outcome(first, chaos::Driver(cfg4).run());

  // Lossy pin: with the Gilbert–Elliott chains scoped per link per seed,
  // the burst-loss plan must be bit-identical across S ∈ {1, 2, 4} too.
  const Plan lossy{"lossy", false, false, true};
  const chaos::Report lossy1 = chaos::Driver(
      membership_config(/*quick=*/true, lossy, 0.8, 1, /*shards=*/1)).run();
  const chaos::Report lossy2 = chaos::Driver(
      membership_config(/*quick=*/true, lossy, 0.8, 1, /*shards=*/2)).run();
  const chaos::Report lossy4 = chaos::Driver(
      membership_config(/*quick=*/true, lossy, 0.8, 1, /*shards=*/4)).run();
  const bool lossy_ok = lossy1.clean() &&
                        chaos::same_outcome(lossy1, lossy2) &&
                        chaos::same_outcome(lossy1, lossy4);

  // Oracle pin: same geometry with the detector off must audit clean and
  // replay bit-identically from its artifact — ground-truth liveness
  // behind the LivenessView seam is unchanged.
  chaos::ChaosConfig oracle_cfg = cfg;
  oracle_cfg.swim = false;
  oracle_cfg.files = 32;
  oracle_cfg.get_rate = 15.0;
  oracle_cfg.net_jitter = 0.005;
  const chaos::Report oracle = chaos::Driver(oracle_cfg).run();
  const std::string artifact = chaos::artifact_to_json(oracle);
  const chaos::Report replayed = chaos::replay(artifact);
  const bool oracle_ok = oracle.clean() &&
                         chaos::same_outcome(oracle, replayed) &&
                         artifact == chaos::artifact_to_json(replayed);

  const bool ok = detect_ok && rerun_ok && shard_ok && lossy_ok && oracle_ok;
  std::cout << "membership smoke: swim="
            << (detect_ok ? "converged(" +
                                std::to_string(
                                    first.detection_latency.size()) +
                                " detections)"
                          : "FAILED")
            << " rerun=" << (rerun_ok ? "bit-identical" : "DIVERGED")
            << " shards=" << (shard_ok ? "bit-identical" : "DIVERGED")
            << " lossy=" << (lossy_ok ? "bit-identical" : "DIVERGED")
            << " oracle=" << (oracle_ok ? "clean+replayed" : "BROKEN")
            << " -> " << (ok ? "PASS" : "FAIL") << "\n";
  const int metrics_rc = bench::emit_metrics(
      args, "abl_membership", cfg.seed,
      driver.sharded()->metrics_snapshot(first.sim_time));
  return (ok && metrics_rc == 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lesslog;
  const auto t0 = std::chrono::steady_clock::now();
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  if (args.smoke) return run_smoke(args);
  const std::vector<double> intensities =
      args.quick ? std::vector<double>{0.0, 0.5, 1.0}
                 : std::vector<double>{0.0, 0.25, 0.5, 0.75, 1.0};

  std::cout << "== Ablation A13: SWIM membership (detection latency + "
               "false suspicion) ==\n"
            << "m=6, b=2, 40 nodes, shards=" << args.shards
            << ", membership-only cells (files=0, get_rate=0, jitter=0);\n"
            << "plans: churn (crash/restart/depart/join), partition "
               "(crash/restart + splits),\nlossy (crash/restart + "
               "intensity-scaled burst loss); x = fault intensity\n\n";

  struct Key {
    const Plan* plan;
    double intensity;
    int seed;
  };
  std::vector<Key> keys;
  for (const Plan& plan : kPlans) {
    for (const double intensity : intensities) {
      for (int seed = 1; seed <= args.seeds; ++seed) {
        keys.push_back({&plan, intensity, seed});
      }
    }
  }
  const std::vector<Cell> cells = bench::run_cells_parallel(
      args.threads, keys.size(), [&](std::size_t i) {
        const Key& k = keys[i];
        return run_cell(args.quick, *k.plan, k.intensity,
                        static_cast<std::uint64_t>(k.seed),
                        static_cast<std::size_t>(args.shards));
      });

  sim::FigureData fig("A13 SWIM membership", "intensity", intensities);
  std::vector<bench::WireRow> rows;
  std::size_t next = 0;
  double violations_total = 0.0;
  double conv_failures_total = 0.0;
  double zero_intensity_false = 0.0;
  double top_intensity_detections = 0.0;
  for (const Plan& plan : kPlans) {
    std::vector<double> detect_mean;
    std::vector<double> false_pct;
    std::vector<double> conv_rounds;
    for (const double intensity : intensities) {
      Cell sum;
      for (int seed = 1; seed <= args.seeds; ++seed) {
        const Cell& cell = cells[next++];
        sum.detect_mean += cell.detect_mean;
        sum.detect_max = std::max(sum.detect_max, cell.detect_max);
        sum.detections += cell.detections;
        sum.suspects += cell.suspects;
        sum.false_suspects += cell.false_suspects;
        sum.false_suspect_pct += cell.false_suspect_pct;
        sum.false_confirms += cell.false_confirms;
        sum.conv_rounds += cell.conv_rounds;
        sum.conv_failures += cell.conv_failures;
        sum.violations += cell.violations;
      }
      violations_total += sum.violations;
      conv_failures_total += sum.conv_failures;
      if (intensity == 0.0) zero_intensity_false += sum.false_suspects;
      if (intensity == intensities.back()) {
        top_intensity_detections += sum.detections;
      }
      detect_mean.push_back(sum.detect_mean / args.seeds);
      false_pct.push_back(sum.false_suspect_pct / args.seeds);
      conv_rounds.push_back(sum.conv_rounds / args.seeds);
      rows.push_back(bench::WireRow{
          "abl_membership",
          std::string("plan=") + plan.name +
              " intensity=" + std::to_string(intensity),
          {{"detect_mean_s", detect_mean.back()},
           {"detect_max_s", sum.detect_max},
           {"detections", sum.detections},
           {"suspects", sum.suspects},
           {"false_suspects", sum.false_suspects},
           {"false_suspect_pct", false_pct.back()},
           {"false_confirms", sum.false_confirms},
           {"conv_rounds_mean", conv_rounds.back()},
           {"conv_failures", sum.conv_failures},
           {"violations", sum.violations}}});
    }
    fig.add_series(std::string(plan.name) + " detect mean (s)",
                   std::move(detect_mean));
    fig.add_series(std::string(plan.name) + " false suspect %",
                   std::move(false_pct));
    fig.add_series(std::string(plan.name) + " conv rounds",
                   std::move(conv_rounds));
  }
  bench::emit(fig, args);

  bench::check(violations_total == 0.0,
               "every cell audits clean (detector never broke the swarm)");
  bench::check(conv_failures_total == 0.0,
               "every epoch re-converged within the round cap");
  bench::check(zero_intensity_false == 0.0,
               "intensity 0 raises no false suspicion (membership ops "
               "still fire, but the wire is clean)");
  bench::check(top_intensity_detections > 0.0,
               "top intensity crashes are detected (latency samples exist)");

  if (args.json.has_value()) {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    bench::write_wire_json(*args.json, args, rows, wall_ms, /*seed=*/1);
  }
  return 0;
}
