// Ablation A11 — update propagation cost.
//
// Section 2's UPDATEFILE pushes a new version top-down through the
// children lists of copy-holders, pruning at non-holders. This ablation
// measures broadcast messages as the replica count grows and compares
// against the naive alternative (flood every live node): LessLog's cost
// scales with the copy count plus the holders' children-list fanout, not
// with N — and every copy is still reached (coverage is asserted).
#include "bench_common.hpp"

#include <set>

#include "lesslog/core/replication.hpp"
#include "lesslog/core/update.hpp"
#include "lesslog/util/rng.hpp"

int main(int argc, char** argv) {
  using namespace lesslog;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const int m = 10;
  const std::uint32_t slots = util::space_size(m);

  std::cout << "== Ablation A11: UPDATEFILE broadcast cost, m=" << m
            << " (" << slots << " nodes) ==\n\n";

  const std::vector<double> replica_counts{0.0, 7.0, 31.0, 127.0, 511.0};
  sim::FigureData fig("A11 update messages vs copies", "replicas",
                      replica_counts);
  std::vector<double> lesslog_msgs;
  std::vector<double> covered;
  std::vector<double> achieved;
  for (const double target_replicas : replica_counts) {
    double msgs = 0.0;
    double reached = 0.0;
    double copies_made = 0.0;
    for (int seed = 1; seed <= args.seeds; ++seed) {
      util::Rng rng(static_cast<std::uint64_t>(seed));
      const core::Pid root{static_cast<std::uint32_t>(rng.bounded(slots))};
      const core::LookupTree tree(m, root);
      util::StatusWord live(m, slots);
      // A tenth of the slots dead keeps the advanced model in play.
      for (const std::uint32_t dead :
           rng.sample_indices(slots, slots / 10)) {
        live.set_dead(dead);
      }
      const auto holder = core::insertion_target(tree, live);
      std::set<std::uint32_t> copies{holder->value()};
      while (copies.size() <
             static_cast<std::size_t>(target_replicas) + 1) {
        // Replicate from the largest-catchment holder, as shedding does;
        // approximating with a random holder keeps the shape.
        std::vector<std::uint32_t> holder_list(copies.begin(), copies.end());
        const core::Pid from{holder_list[rng.bounded(holder_list.size())]};
        const auto placement = core::replicate_target(
            tree, from, live,
            [&copies](core::Pid p) { return copies.contains(p.value()); },
            rng);
        if (!placement.has_value()) break;
        copies.insert(placement->target.value());
      }
      const core::UpdateResult r = core::propagate_update(
          tree, live,
          [&copies](core::Pid p) { return copies.contains(p.value()); });
      msgs += static_cast<double>(r.messages);
      reached += r.updated.size() == copies.size() ? 1.0 : 0.0;
      copies_made += static_cast<double>(copies.size());
    }
    lesslog_msgs.push_back(msgs / args.seeds);
    covered.push_back(100.0 * reached / args.seeds);
    // Random-holder growth saturates once every children list near the
    // copies is exhausted; report the copies actually reached so the
    // plateau in the message series is self-explanatory.
    achieved.push_back(copies_made / args.seeds);
  }
  fig.add_series("copies achieved", std::move(achieved));
  fig.add_series("lesslog broadcast msgs", std::move(lesslog_msgs));
  fig.add_series("naive flood msgs",
                 std::vector<double>(replica_counts.size(),
                                     static_cast<double>(slots) * 0.9 - 1));
  fig.add_series("% runs fully covered", std::move(covered));
  bench::emit(fig, args);

  bench::check(
      fig.find("lesslog broadcast msgs")->values.front() <
          fig.find("naive flood msgs")->values.front() / 50.0,
      "with few copies the pruned broadcast costs a tiny fraction of a "
      "flood");
  bench::check(fig.roughly_increasing("lesslog broadcast msgs", 1.0),
               "cost grows with the copy population");
  bool all_covered = true;
  for (const double c : fig.find("% runs fully covered")->values) {
    all_covered = all_covered && c == 100.0;
  }
  bench::check(all_covered,
               "every copy receives every update (holder-connected "
               "broadcast)");
  return 0;
}
