// Figure 5 — "An evenly-distributed load".
//
// One popular file; the total request rate sweeps 1,000..20,000 req/s,
// evenly distributed over all nodes of a 1024-slot system (0% dead);
// replicas are created at the most overloaded node until no node exceeds
// 100 req/s. Series: log-based, LessLog, random (the paper's three
// methods, all resolving lookups through the same binomial tree).
//
// Paper claims checked: LessLog ≪ random ("significantly fewer") and
// LessLog ≳ log-based ("slightly more"); replica demand grows with rate.
#include "bench_common.hpp"

#include "lesslog/baseline/policy.hpp"

int main(int argc, char** argv) {
  using namespace lesslog;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const std::vector<double> rates = bench::paper_rates(args.quick);
  sim::ExperimentConfig base = bench::paper_config();
  base.workload = sim::WorkloadKind::kUniform;
  args.apply(base);
  bench::print_header("Figure 5: replicas to balance, even distribution",
                      base, args);

  util::ThreadPool pool;
  std::vector<bench::SolveRow> rows;
  const auto t0 = std::chrono::steady_clock::now();
  sim::FigureData fig("Figure 5 (replicas vs. incoming requests)",
                      "requests/s", rates);
  fig.add_series("log-based",
                 bench::sweep_series_timed(pool, rates, base,
                                           baseline::logbased_policy(),
                                           args.seeds, "fig5_even_load",
                                           "log-based", rows));
  fig.add_series("lesslog",
                 bench::sweep_series_timed(pool, rates, base,
                                           baseline::lesslog_policy(),
                                           args.seeds, "fig5_even_load",
                                           "lesslog", rows));
  fig.add_series("random",
                 bench::sweep_series_timed(pool, rates, base,
                                           baseline::random_policy(),
                                           args.seeds, "fig5_even_load",
                                           "random", rows));
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  bench::emit(fig, args);
  if (args.json.has_value()) bench::write_json(*args.json, args, rows, wall_ms);

  bench::check(fig.dominates("lesslog", "random"),
               "LessLog uses fewer replicas than random at every rate");
  bench::check(
      fig.find("lesslog")->values.back() * 1.5 <
          fig.find("random")->values.back(),
      "the gap to random is decisive at the top rate (\"significantly\")");
  bench::check(fig.dominates("log-based", "lesslog", 0.05),
               "perfect-log-based needs at most ~LessLog's replica count");
  bench::check(fig.dominates("lesslog", "log-based", 0.8),
               "LessLog stays within ~1.8x of log-based (\"slightly more\")");
  bench::check(fig.roughly_increasing("lesslog", 2.0),
               "replica demand grows with the request rate");
  return bench::enforce_wall_gate(args, wall_ms);
}
