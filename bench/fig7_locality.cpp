// Figure 7 — "A locality model".
//
// Same three-method comparison as Figure 5, but 80% of the requests are
// received by a random 20% of the nodes ("a certain region of the P2P
// system accesses this file more frequently than the rest").
//
// Paper claims checked: LessLog ≪ random, LessLog ≳ log-based, growth
// with rate. Note the log-based baseline here reads *perfect* access logs
// (exact flow rates), the strongest version of that comparator.
#include "bench_common.hpp"

#include "lesslog/baseline/policy.hpp"

int main(int argc, char** argv) {
  using namespace lesslog;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const std::vector<double> rates = bench::paper_rates(args.quick);
  sim::ExperimentConfig base = bench::paper_config();
  base.workload = sim::WorkloadKind::kLocality;
  args.apply(base);
  bench::print_header("Figure 7: replicas to balance, locality model (80/20)",
                      base, args);

  util::ThreadPool pool;
  std::vector<bench::SolveRow> rows;
  const auto t0 = std::chrono::steady_clock::now();
  sim::FigureData fig("Figure 7 (replicas vs. incoming requests)",
                      "requests/s", rates);
  fig.add_series("log-based",
                 bench::sweep_series_timed(pool, rates, base,
                                           baseline::logbased_policy(),
                                           args.seeds, "fig7_locality",
                                           "log-based", rows));
  fig.add_series("lesslog",
                 bench::sweep_series_timed(pool, rates, base,
                                           baseline::lesslog_policy(),
                                           args.seeds, "fig7_locality",
                                           "lesslog", rows));
  fig.add_series("random",
                 bench::sweep_series_timed(pool, rates, base,
                                           baseline::random_policy(),
                                           args.seeds, "fig7_locality",
                                           "random", rows));
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  bench::emit(fig, args);
  if (args.json.has_value()) bench::write_json(*args.json, args, rows, wall_ms);

  bench::check(fig.dominates("lesslog", "random", 0.02),
               "LessLog uses fewer replicas than random at every rate");
  bench::check(
      fig.find("lesslog")->values.back() * 1.3 <
          fig.find("random")->values.back(),
      "the gap to random is decisive at the top rate (\"significantly\")");
  bench::check(fig.dominates("log-based", "lesslog", 0.05),
               "perfect-log-based needs at most ~LessLog's replica count");
  bench::check(fig.dominates("lesslog", "log-based", 1.0),
               "LessLog stays within ~2x of log-based (\"slightly more\")");
  bench::check(fig.roughly_increasing("lesslog", 3.0),
               "replica demand grows with the request rate");
  return 0;
}
