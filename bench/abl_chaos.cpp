// Ablation A12 — chaos soak: deterministic fault injection with the
// swarm invariant auditor.
//
// Sweeps fault intensity over the chaos driver (burst loss, partitions,
// corruption, duplication, delay spikes, crash -> restart, churn) and
// reports audit violations, workload fault fraction, injected-fault
// volume, and repair traffic per intensity. The headline claim: every
// cell audits clean — the protocol absorbs the whole schedule.
//
// Cells are independent Driver runs, so the intensity x seed grid runs
// on the shared thread pool (--threads N); results are gathered in cell
// order, keeping stdout byte-identical for every thread count.
//
// --smoke is the ctest gate: a clean run must audit clean, a run with
// deliberately broken crash recovery must NOT, and the broken run must
// replay bit-identically from its JSON artifact alone.
#include <algorithm>
#include <chrono>

#include "bench_common.hpp"

#include "lesslog/chaos/driver.hpp"
#include "lesslog/chaos/replay.hpp"
#include "lesslog/util/stats.hpp"

namespace {

using namespace lesslog;

chaos::ChaosConfig base_config(bool quick, double intensity,
                               std::uint64_t seed, std::size_t shards) {
  chaos::ChaosConfig cfg;
  cfg.m = 6;
  cfg.b = 2;
  cfg.nodes = 40;
  cfg.seed = seed;
  cfg.epochs = quick ? 3 : 5;
  cfg.epoch_length = quick ? 20.0 : 30.0;
  cfg.fault_intensity = intensity;
  cfg.files = quick ? 32 : 48;
  cfg.get_rate = quick ? 15.0 : 20.0;
  cfg.shards = shards;
  return cfg;
}

struct Cell {
  double violations = 0.0;
  double fault_pct = 0.0;     ///< workload GETs that came back ok=false
  double unterminated = 0.0;  ///< issued - completed (must be 0)
  double injected = 0.0;      ///< total injected faults, all kinds
  double repair = 0.0;        ///< kFilePush repair transfers
  double msgs = 0.0;
  double p99_ms = 0.0;   ///< GET completion tail from client.get_latency
  double p999_ms = 0.0;  ///< (octave-resolution histogram; 0 if nometrics)
};

/// Tail percentile (ms) of the run's client.get_latency histogram —
/// octave resolution, but the same obs cells a deployment would scrape.
/// 0 when metrics are compiled out (LESSLOG_NO_METRICS).
double hist_pct_ms(const obs::Snapshot& snap, double pct) {
  const obs::LatencyHistogram* h = snap.histogram("client.get_latency");
  return h != nullptr ? 1000.0 * h->percentile(pct) : 0.0;
}

obs::Snapshot driver_snapshot(chaos::Driver& driver, double sim_time) {
  if (driver.sharded() != nullptr) {
    return driver.sharded()->metrics_snapshot(sim_time);
  }
  return driver.swarm().registry().snapshot(sim_time);
}

Cell run_cell(bool quick, double intensity, std::uint64_t seed,
              std::size_t shards) {
  chaos::Driver driver(base_config(quick, intensity, seed, shards));
  const chaos::Report r = driver.run();
  const obs::Snapshot snap = driver_snapshot(driver, r.sim_time);
  Cell cell;
  cell.p99_ms = hist_pct_ms(snap, 99.0);
  cell.p999_ms = hist_pct_ms(snap, 99.9);
  cell.violations = static_cast<double>(r.violations.size());
  cell.fault_pct =
      r.workload_issued > 0
          ? 100.0 * static_cast<double>(r.workload_faults) /
                static_cast<double>(r.workload_issued)
          : 0.0;
  cell.unterminated =
      static_cast<double>(r.workload_issued - r.workload_completed);
  cell.injected = static_cast<double>(
      r.injected.burst_dropped + r.injected.partition_dropped +
      r.injected.duplicated + r.injected.corrupted +
      r.injected.delay_spikes);
  cell.repair = static_cast<double>(r.repair_pushes);
  cell.msgs = static_cast<double>(r.messages_sent);
  return cell;
}

/// The sharded ctest gate (--smoke --shards N): the full chaos schedule
/// against a ShardedSwarm must audit clean, replay bit-identically from
/// its artifact (which carries the shard count), and reproduce the same
/// outcome on an independent second run — the parallel engine is a pure
/// function of the config.
int run_sharded_smoke(const bench::BenchArgs& args) {
  chaos::ChaosConfig cfg = base_config(
      /*quick=*/true, 0.6, 1, static_cast<std::size_t>(args.shards));
  chaos::Driver driver(cfg);
  const chaos::Report first = driver.run();
  const bool clean_ok = first.clean() && first.workload_issued > 0 &&
                        first.workload_issued == first.workload_completed;

  const chaos::Report second = chaos::Driver(cfg).run();
  const bool repeat_ok = chaos::same_outcome(first, second);

  const std::string artifact = chaos::artifact_to_json(first);
  const chaos::Report replayed = chaos::replay(artifact);
  const bool replay_ok = chaos::same_outcome(first, replayed) &&
                         artifact == chaos::artifact_to_json(replayed);

  const bool ok = clean_ok && repeat_ok && replay_ok;
  std::cout << "sharded chaos smoke (S=" << args.shards
            << "): clean_run=" << (clean_ok ? "clean" : "DIRTY")
            << " rerun=" << (repeat_ok ? "bit-identical" : "DIVERGED")
            << " replay=" << (replay_ok ? "bit-identical" : "DIVERGED")
            << " -> " << (ok ? "PASS" : "FAIL") << "\n";
  const int metrics_rc = bench::emit_metrics(
      args, "abl_chaos", cfg.seed,
      driver.sharded()->metrics_snapshot(first.sim_time));
  return (ok && metrics_rc == 0) ? 0 : 1;
}

/// The reliability-smoke config: the full adaptive layer on (RTT-estimated
/// timeouts, hedged GETs, suspicion routing, peer-side shedding) over a
/// crash/churn-only schedule. Wire faults stay off so the layer's own
/// retransmit/hedge/shed decisions are the only source of extra traffic,
/// and swim mode pins the pre-materialized timeline so the same schedule
/// replays identically at any shard count.
chaos::ChaosConfig reliability_config(std::uint64_t seed,
                                      std::size_t shards) {
  chaos::ChaosConfig cfg = base_config(/*quick=*/true, 0.6, seed, shards);
  cfg.bursts = false;
  cfg.partitions = false;
  cfg.corruption = false;
  cfg.duplicates = false;
  cfg.delay_spikes = false;
  cfg.swim = true;
  cfg.adaptive_timeouts = true;
  cfg.hedge_percentile = 0.9;
  cfg.suspicion_routing = true;
  cfg.busy_budget = 4;
  cfg.busy_refill = 100.0;
  return cfg;
}

/// The reliability ctest gate (--reliability-smoke): one chaos intensity
/// point with hedging and shedding enabled must (a) audit clean with the
/// hedge/ledger reconciliation checks live, (b) actually exercise the
/// layer (RTT samples taken, hedges launched, sheds issued and received),
/// (c) rerun bit-identically including the whole reliability ledger,
/// (d) complete the workload with the exact same issued/ok/faults ledger
/// at S = 1 and S = 4 — the timing-driven cells (RTT samples, hedges,
/// sheds) legitimately differ across shard counts because each shard
/// seeds its own delivery-jitter stream, but every per-run identity
/// still holds on both sides and request OUTCOMES must not depend on
/// the shard layout — and (e) replay from its JSON artifact alone (the
/// artifact round-trips the reliability knobs).
int run_reliability_smoke(const bench::BenchArgs& args) {
  const chaos::ChaosConfig cfg = reliability_config(/*seed=*/1, /*shards=*/1);
  const chaos::Report first = chaos::Driver(cfg).run();
  const proto::ReliabilityLedger& led = first.reliability;
  const bool clean_ok = first.clean() && first.workload_issued > 0 &&
                        first.workload_issued == first.workload_completed;
  const bool engaged_ok = led.rtt_samples > 0 && led.hedges_launched > 0 &&
                          led.busy_shed > 0 && led.busy_received > 0;

  const chaos::Report second = chaos::Driver(cfg).run();
  const bool repeat_ok = chaos::same_outcome(first, second);

  const chaos::Report sharded =
      chaos::Driver(reliability_config(/*seed=*/1, /*shards=*/4)).run();
  const proto::ReliabilityLedger& sled = sharded.reliability;
  const bool shard_ok = sharded.clean() && sled.issued == led.issued &&
                        sled.ok == led.ok && sled.faults == led.faults &&
                        sled.busy_shed > 0 && sled.hedges_launched > 0;

  const std::string artifact = chaos::artifact_to_json(first);
  const chaos::Report replayed = chaos::replay(artifact);
  const bool replay_ok = chaos::same_outcome(first, replayed) &&
                         artifact == chaos::artifact_to_json(replayed);

  const bool ok =
      clean_ok && engaged_ok && repeat_ok && shard_ok && replay_ok;
  std::cout << "reliability smoke: clean_run="
            << (clean_ok ? "clean" : "DIRTY") << " layer="
            << (engaged_ok ? "engaged" : "IDLE") << " (rtt_samples="
            << led.rtt_samples << " hedges=" << led.hedges_launched
            << " shed=" << led.busy_shed << ")"
            << " rerun=" << (repeat_ok ? "bit-identical" : "DIVERGED")
            << " shards=" << (shard_ok ? "ledger-equal" : "DIVERGED")
            << " replay=" << (replay_ok ? "bit-identical" : "DIVERGED")
            << " -> " << (ok ? "PASS" : "FAIL") << "\n";
  for (const chaos::Violation& v : first.violations) {
    std::cout << "  violation (S=1, epoch " << v.epoch << "): " << v.check
              << " — " << v.detail << "\n";
  }
  for (const chaos::Violation& v : sharded.violations) {
    std::cout << "  violation (S=4, epoch " << v.epoch << "): " << v.check
              << " — " << v.detail << "\n";
  }
  (void)args;
  return ok ? 0 : 1;
}

/// --head-to-head: the A12 top-intensity cell, fixed-timeout baseline
/// versus the adaptive reliability layer, same seed and schedule. Prints
/// the EXPERIMENTS.md comparison row: exact (sorted-sample) GET latency
/// percentiles, fault rate, message volume, and audit cleanliness. The
/// claim under test: the layer cuts the p99 completion tail without
/// dirtying a single audit.
int run_head_to_head(const bench::BenchArgs& args) {
  struct Side {
    const char* name;
    bool adaptive;
    double p50_ms, p99_ms, p999_ms, fault_pct, msgs;
    std::size_t violations;
    std::int64_t hedges, rtt_samples;
  };
  Side sides[2] = {{"fixed", false, 0, 0, 0, 0, 0, 0, 0, 0},
                   {"adaptive", true, 0, 0, 0, 0, 0, 0, 0, 0}};
  for (Side& side : sides) {
    chaos::ChaosConfig cfg =
        base_config(args.quick, /*intensity=*/1.0, /*seed=*/1, /*shards=*/1);
    if (side.adaptive) {
      cfg.adaptive_timeouts = true;
      cfg.hedge_percentile = 0.9;
    }
    chaos::Driver driver(cfg);
    const chaos::Report r = driver.run();
    std::vector<double> lat = driver.swarm().all_latencies();
    std::sort(lat.begin(), lat.end());
    side.p50_ms = 1000.0 * util::percentile_sorted(lat, 50.0);
    side.p99_ms = 1000.0 * util::percentile_sorted(lat, 99.0);
    side.p999_ms = 1000.0 * util::percentile_sorted(lat, 99.9);
    side.fault_pct =
        r.workload_issued > 0
            ? 100.0 * static_cast<double>(r.workload_faults) /
                  static_cast<double>(r.workload_issued)
            : 0.0;
    side.msgs = static_cast<double>(r.messages_sent);
    side.violations = r.violations.size();
    side.hedges = r.reliability.hedges_launched;
    side.rtt_samples = r.reliability.rtt_samples;
  }
  std::cout << "== A12 head-to-head: fixed timeout vs adaptive reliability "
               "layer (intensity 1.0, seed 1) ==\n";
  for (const Side& side : sides) {
    std::cout << side.name << ": p50=" << side.p50_ms
              << "ms p99=" << side.p99_ms << "ms p999=" << side.p999_ms
              << "ms faults=" << side.fault_pct
              << "% msgs=" << side.msgs << " hedges=" << side.hedges
              << " rtt_samples=" << side.rtt_samples << " audit="
              << (side.violations == 0 ? "clean" : "DIRTY") << "\n";
  }
  const bool ok = sides[0].violations == 0 && sides[1].violations == 0 &&
                  sides[1].p99_ms < sides[0].p99_ms;
  std::cout << "adaptive p99 " << (ok ? "improves" : "DOES NOT improve")
            << " on fixed with both audits clean -> "
            << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}

/// The ctest gate: healthy chaos audits clean, broken recovery is
/// caught, and the broken run replays bit-identically from its artifact.
int run_smoke(const bench::BenchArgs& args) {
  if (args.shards > 1) return run_sharded_smoke(args);
  chaos::ChaosConfig clean_cfg =
      base_config(/*quick=*/true, 0.6, 1, /*shards=*/1);
  chaos::Driver clean_driver(clean_cfg);
  const chaos::Report clean = clean_driver.run();
  const bool clean_ok = clean.clean() && clean.workload_issued > 0 &&
                        clean.workload_issued == clean.workload_completed;

  chaos::ChaosConfig broken_cfg =
      base_config(/*quick=*/true, 0.6, 2, /*shards=*/1);
  broken_cfg.silent_crashes = true;
  const chaos::Report broken = chaos::Driver(broken_cfg).run();
  const bool caught = !broken.clean();

  const std::string artifact = chaos::artifact_to_json(broken);
  const chaos::Report replayed = chaos::replay(artifact);
  const bool replay_ok =
      chaos::same_outcome(broken, replayed) &&
      artifact == chaos::artifact_to_json(replayed);

  const bool ok = clean_ok && caught && replay_ok;
  std::cout << "chaos smoke: clean_run=" << (clean_ok ? "clean" : "DIRTY")
            << " broken_run="
            << (caught ? "caught(" + std::to_string(broken.violations.size()) +
                             " violations)"
                       : "MISSED")
            << " replay=" << (replay_ok ? "bit-identical" : "DIVERGED")
            << " -> " << (ok ? "PASS" : "FAIL") << "\n";
  const int metrics_rc = bench::emit_metrics(
      args, "abl_chaos", clean_cfg.seed,
      clean_driver.swarm().registry().snapshot(
          clean_driver.swarm().engine().now()));
  return (ok && metrics_rc == 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lesslog;
  const auto t0 = std::chrono::steady_clock::now();
  // Mode flags this bench owns; scanned off before the shared parser,
  // which rejects flags it does not know.
  bool reliability_smoke = false;
  bool head_to_head = false;
  std::vector<char*> rest = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reliability-smoke") {
      reliability_smoke = true;
    } else if (arg == "--head-to-head") {
      head_to_head = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  const bench::BenchArgs args =
      bench::BenchArgs::parse(static_cast<int>(rest.size()), rest.data());
  if (reliability_smoke) return run_reliability_smoke(args);
  if (head_to_head) return run_head_to_head(args);
  if (args.smoke) return run_smoke(args);
  const std::vector<double> intensities =
      args.quick ? std::vector<double>{0.0, 0.5, 1.0}
                 : std::vector<double>{0.0, 0.25, 0.5, 0.75, 1.0};

  std::cout << "== Ablation A12: chaos soak (fault injection + invariant "
               "audit) ==\n"
            << "m=6, b=2, 40 nodes, shards=" << args.shards
            << "; per epoch: burst loss, partitions, "
               "corruption,\nduplication, delay spikes, crash->restart, "
               "churn; x = fault intensity\n\n";

  // Flatten intensity x seed into one independent cell list.
  struct Key {
    double intensity;
    int seed;
  };
  std::vector<Key> keys;
  for (const double intensity : intensities) {
    for (int seed = 1; seed <= args.seeds; ++seed) {
      keys.push_back({intensity, seed});
    }
  }
  const std::vector<Cell> cells = bench::run_cells_parallel(
      args.threads, keys.size(), [&](std::size_t i) {
        const Key& k = keys[i];
        return run_cell(args.quick, k.intensity,
                        static_cast<std::uint64_t>(k.seed),
                        static_cast<std::size_t>(args.shards));
      });

  sim::FigureData fig("A12 chaos soak", "intensity", intensities);
  std::vector<bench::WireRow> rows;
  std::vector<double> violations;
  std::vector<double> fault_pct;
  std::vector<double> injected;
  std::vector<double> repair;
  std::size_t next = 0;
  double unterminated_total = 0.0;
  for (const double intensity : intensities) {
    Cell sum;
    for (int seed = 1; seed <= args.seeds; ++seed) {
      const Cell& cell = cells[next++];
      sum.violations += cell.violations;
      sum.fault_pct += cell.fault_pct;
      sum.unterminated += cell.unterminated;
      sum.injected += cell.injected;
      sum.repair += cell.repair;
      sum.msgs += cell.msgs;
      sum.p99_ms += cell.p99_ms;
      sum.p999_ms += cell.p999_ms;
    }
    unterminated_total += sum.unterminated;
    violations.push_back(sum.violations);  // total, not mean: must be 0
    fault_pct.push_back(sum.fault_pct / args.seeds);
    injected.push_back(sum.injected / args.seeds);
    repair.push_back(sum.repair / args.seeds);
    rows.push_back(bench::WireRow{
        "abl_chaos",
        "intensity=" + std::to_string(intensity),
        {{"violations", violations.back()},
         {"workload_fault_pct", fault_pct.back()},
         {"injected_faults", injected.back()},
         {"repair_pushes", repair.back()},
         {"messages", sum.msgs / args.seeds},
         {"p99_ms", sum.p99_ms / args.seeds},
         {"p999_ms", sum.p999_ms / args.seeds}}});
  }
  fig.add_series("audit violations", std::move(violations));
  fig.add_series("workload faults %", std::move(fault_pct));
  fig.add_series("injected faults", std::move(injected));
  fig.add_series("repair pushes", std::move(repair));
  bench::emit(fig, args);

  bool all_clean = true;
  for (const double v : fig.find("audit violations")->values) {
    all_clean = all_clean && v == 0.0;
  }
  bench::check(all_clean,
               "every intensity audits clean (all invariants hold)");
  bench::check(unterminated_total == 0.0,
               "every workload GET terminated (no stuck requests)");
  bench::check(fig.find("injected faults")->values.front() == 0.0,
               "intensity 0 injects nothing (clean fast path)");
  bench::check(fig.find("injected faults")->values.back() > 0.0,
               "top intensity actually injected faults");

  if (args.json.has_value()) {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    bench::write_wire_json(*args.json, args, rows, wall_ms, /*seed=*/1);
  }
  return 0;
}
