// Ablation A12 — chaos soak: deterministic fault injection with the
// swarm invariant auditor.
//
// Sweeps fault intensity over the chaos driver (burst loss, partitions,
// corruption, duplication, delay spikes, crash -> restart, churn) and
// reports audit violations, workload fault fraction, injected-fault
// volume, and repair traffic per intensity. The headline claim: every
// cell audits clean — the protocol absorbs the whole schedule.
//
// Cells are independent Driver runs, so the intensity x seed grid runs
// on the shared thread pool (--threads N); results are gathered in cell
// order, keeping stdout byte-identical for every thread count.
//
// --smoke is the ctest gate: a clean run must audit clean, a run with
// deliberately broken crash recovery must NOT, and the broken run must
// replay bit-identically from its JSON artifact alone.
#include <chrono>

#include "bench_common.hpp"

#include "lesslog/chaos/driver.hpp"
#include "lesslog/chaos/replay.hpp"

namespace {

using namespace lesslog;

chaos::ChaosConfig base_config(bool quick, double intensity,
                               std::uint64_t seed, std::size_t shards) {
  chaos::ChaosConfig cfg;
  cfg.m = 6;
  cfg.b = 2;
  cfg.nodes = 40;
  cfg.seed = seed;
  cfg.epochs = quick ? 3 : 5;
  cfg.epoch_length = quick ? 20.0 : 30.0;
  cfg.fault_intensity = intensity;
  cfg.files = quick ? 32 : 48;
  cfg.get_rate = quick ? 15.0 : 20.0;
  cfg.shards = shards;
  return cfg;
}

struct Cell {
  double violations = 0.0;
  double fault_pct = 0.0;     ///< workload GETs that came back ok=false
  double unterminated = 0.0;  ///< issued - completed (must be 0)
  double injected = 0.0;      ///< total injected faults, all kinds
  double repair = 0.0;        ///< kFilePush repair transfers
  double msgs = 0.0;
};

Cell run_cell(bool quick, double intensity, std::uint64_t seed,
              std::size_t shards) {
  chaos::Driver driver(base_config(quick, intensity, seed, shards));
  const chaos::Report r = driver.run();
  Cell cell;
  cell.violations = static_cast<double>(r.violations.size());
  cell.fault_pct =
      r.workload_issued > 0
          ? 100.0 * static_cast<double>(r.workload_faults) /
                static_cast<double>(r.workload_issued)
          : 0.0;
  cell.unterminated =
      static_cast<double>(r.workload_issued - r.workload_completed);
  cell.injected = static_cast<double>(
      r.injected.burst_dropped + r.injected.partition_dropped +
      r.injected.duplicated + r.injected.corrupted +
      r.injected.delay_spikes);
  cell.repair = static_cast<double>(r.repair_pushes);
  cell.msgs = static_cast<double>(r.messages_sent);
  return cell;
}

/// The sharded ctest gate (--smoke --shards N): the full chaos schedule
/// against a ShardedSwarm must audit clean, replay bit-identically from
/// its artifact (which carries the shard count), and reproduce the same
/// outcome on an independent second run — the parallel engine is a pure
/// function of the config.
int run_sharded_smoke(const bench::BenchArgs& args) {
  chaos::ChaosConfig cfg = base_config(
      /*quick=*/true, 0.6, 1, static_cast<std::size_t>(args.shards));
  chaos::Driver driver(cfg);
  const chaos::Report first = driver.run();
  const bool clean_ok = first.clean() && first.workload_issued > 0 &&
                        first.workload_issued == first.workload_completed;

  const chaos::Report second = chaos::Driver(cfg).run();
  const bool repeat_ok = chaos::same_outcome(first, second);

  const std::string artifact = chaos::artifact_to_json(first);
  const chaos::Report replayed = chaos::replay(artifact);
  const bool replay_ok = chaos::same_outcome(first, replayed) &&
                         artifact == chaos::artifact_to_json(replayed);

  const bool ok = clean_ok && repeat_ok && replay_ok;
  std::cout << "sharded chaos smoke (S=" << args.shards
            << "): clean_run=" << (clean_ok ? "clean" : "DIRTY")
            << " rerun=" << (repeat_ok ? "bit-identical" : "DIVERGED")
            << " replay=" << (replay_ok ? "bit-identical" : "DIVERGED")
            << " -> " << (ok ? "PASS" : "FAIL") << "\n";
  const int metrics_rc = bench::emit_metrics(
      args, "abl_chaos", cfg.seed,
      driver.sharded()->metrics_snapshot(first.sim_time));
  return (ok && metrics_rc == 0) ? 0 : 1;
}

/// The ctest gate: healthy chaos audits clean, broken recovery is
/// caught, and the broken run replays bit-identically from its artifact.
int run_smoke(const bench::BenchArgs& args) {
  if (args.shards > 1) return run_sharded_smoke(args);
  chaos::ChaosConfig clean_cfg =
      base_config(/*quick=*/true, 0.6, 1, /*shards=*/1);
  chaos::Driver clean_driver(clean_cfg);
  const chaos::Report clean = clean_driver.run();
  const bool clean_ok = clean.clean() && clean.workload_issued > 0 &&
                        clean.workload_issued == clean.workload_completed;

  chaos::ChaosConfig broken_cfg =
      base_config(/*quick=*/true, 0.6, 2, /*shards=*/1);
  broken_cfg.silent_crashes = true;
  const chaos::Report broken = chaos::Driver(broken_cfg).run();
  const bool caught = !broken.clean();

  const std::string artifact = chaos::artifact_to_json(broken);
  const chaos::Report replayed = chaos::replay(artifact);
  const bool replay_ok =
      chaos::same_outcome(broken, replayed) &&
      artifact == chaos::artifact_to_json(replayed);

  const bool ok = clean_ok && caught && replay_ok;
  std::cout << "chaos smoke: clean_run=" << (clean_ok ? "clean" : "DIRTY")
            << " broken_run="
            << (caught ? "caught(" + std::to_string(broken.violations.size()) +
                             " violations)"
                       : "MISSED")
            << " replay=" << (replay_ok ? "bit-identical" : "DIVERGED")
            << " -> " << (ok ? "PASS" : "FAIL") << "\n";
  const int metrics_rc = bench::emit_metrics(
      args, "abl_chaos", clean_cfg.seed,
      clean_driver.swarm().registry().snapshot(
          clean_driver.swarm().engine().now()));
  return (ok && metrics_rc == 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lesslog;
  const auto t0 = std::chrono::steady_clock::now();
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  if (args.smoke) return run_smoke(args);
  const std::vector<double> intensities =
      args.quick ? std::vector<double>{0.0, 0.5, 1.0}
                 : std::vector<double>{0.0, 0.25, 0.5, 0.75, 1.0};

  std::cout << "== Ablation A12: chaos soak (fault injection + invariant "
               "audit) ==\n"
            << "m=6, b=2, 40 nodes, shards=" << args.shards
            << "; per epoch: burst loss, partitions, "
               "corruption,\nduplication, delay spikes, crash->restart, "
               "churn; x = fault intensity\n\n";

  // Flatten intensity x seed into one independent cell list.
  struct Key {
    double intensity;
    int seed;
  };
  std::vector<Key> keys;
  for (const double intensity : intensities) {
    for (int seed = 1; seed <= args.seeds; ++seed) {
      keys.push_back({intensity, seed});
    }
  }
  const std::vector<Cell> cells = bench::run_cells_parallel(
      args.threads, keys.size(), [&](std::size_t i) {
        const Key& k = keys[i];
        return run_cell(args.quick, k.intensity,
                        static_cast<std::uint64_t>(k.seed),
                        static_cast<std::size_t>(args.shards));
      });

  sim::FigureData fig("A12 chaos soak", "intensity", intensities);
  std::vector<bench::WireRow> rows;
  std::vector<double> violations;
  std::vector<double> fault_pct;
  std::vector<double> injected;
  std::vector<double> repair;
  std::size_t next = 0;
  double unterminated_total = 0.0;
  for (const double intensity : intensities) {
    Cell sum;
    for (int seed = 1; seed <= args.seeds; ++seed) {
      const Cell& cell = cells[next++];
      sum.violations += cell.violations;
      sum.fault_pct += cell.fault_pct;
      sum.unterminated += cell.unterminated;
      sum.injected += cell.injected;
      sum.repair += cell.repair;
      sum.msgs += cell.msgs;
    }
    unterminated_total += sum.unterminated;
    violations.push_back(sum.violations);  // total, not mean: must be 0
    fault_pct.push_back(sum.fault_pct / args.seeds);
    injected.push_back(sum.injected / args.seeds);
    repair.push_back(sum.repair / args.seeds);
    rows.push_back(bench::WireRow{
        "abl_chaos",
        "intensity=" + std::to_string(intensity),
        {{"violations", violations.back()},
         {"workload_fault_pct", fault_pct.back()},
         {"injected_faults", injected.back()},
         {"repair_pushes", repair.back()},
         {"messages", sum.msgs / args.seeds}}});
  }
  fig.add_series("audit violations", std::move(violations));
  fig.add_series("workload faults %", std::move(fault_pct));
  fig.add_series("injected faults", std::move(injected));
  fig.add_series("repair pushes", std::move(repair));
  bench::emit(fig, args);

  bool all_clean = true;
  for (const double v : fig.find("audit violations")->values) {
    all_clean = all_clean && v == 0.0;
  }
  bench::check(all_clean,
               "every intensity audits clean (all invariants hold)");
  bench::check(unterminated_total == 0.0,
               "every workload GET terminated (no stuck requests)");
  bench::check(fig.find("injected faults")->values.front() == 0.0,
               "intensity 0 injects nothing (clean fast path)");
  bench::check(fig.find("injected faults")->values.back() > 0.0,
               "top intensity actually injected faults");

  if (args.json.has_value()) {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    bench::write_wire_json(*args.json, args, rows, wall_ms, /*seed=*/1);
  }
  return 0;
}
