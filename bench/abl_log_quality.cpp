// Ablation A8 — how good must access logs be to beat logless placement?
//
// The paper's pitch: log analysis costs storage/CPU/I/O, LessLog costs a
// few bit operations and is only "slightly" worse than log-based
// placement. This ablation quantifies the break-even: the log-based
// baseline reads logs that record each request with probability p over a
// 1-second window (perfect logs = the Figure 5/7 baseline; thin samples
// scramble the child ranking). Series: replicas to balance vs p, against
// LessLog's constant logless line, under the locality workload where the
// two genuinely differ.
#include "bench_common.hpp"

#include "lesslog/baseline/policy.hpp"

int main(int argc, char** argv) {
  using namespace lesslog;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const std::vector<double> sample_rates{1.0, 0.1, 0.01, 0.001, 0.0001};

  sim::ExperimentConfig base = bench::paper_config();
  base.workload = sim::WorkloadKind::kLocality;
  base.total_rate = args.quick ? 8000.0 : 16000.0;

  std::cout << "== Ablation A8: log sampling quality vs replica count ==\n"
            << "locality workload, " << base.total_rate
            << " req/s, 1 s log window, seeds=" << args.seeds << "\n\n";

  const double lesslog_replicas =
      bench::mean_replicas(base, baseline::lesslog_policy(), args.seeds);

  sim::FigureData fig("A8 replicas vs log sample rate", "sample rate",
                      sample_rates);
  std::vector<double> sampled;
  for (const double p : sample_rates) {
    sampled.push_back(bench::mean_replicas(
        base, baseline::sampled_log_policy(p), args.seeds));
  }
  fig.add_series("sampled-log", std::move(sampled));
  fig.add_series("lesslog (no logs)",
                 std::vector<double>(sample_rates.size(), lesslog_replicas));
  bench::emit(fig, args, /*precision=*/4);

  const sim::Series* logs = fig.find("sampled-log");
  bench::check(logs->values.front() <= lesslog_replicas * 1.05 + 2.0,
               "perfect logs match the Figure 7 log-based baseline");
  bench::check(logs->values.back() >= logs->values.front(),
               "degrading the log degrades the placement");
  // The break-even claim: once logs are thin enough, logless placement is
  // at least as good — the paper's cost argument then wins outright.
  bench::check(logs->values.back() >= lesslog_replicas * 0.95,
               "heavily sampled logs are no better than logless LessLog");
  return 0;
}
