// Ablation A7 — multi-file catalogs with Zipf popularity.
//
// The paper evaluates one popular file; a deployment hosts a catalog. This
// ablation sweeps the Zipf exponent and shows (a) total replicas needed to
// balance the whole catalog, (b) how sharply LessLog concentrates replicas
// on the head of the popularity distribution, and (c) the storage overhead
// relative to a single copy per file — all with the logless placement rule
// (each overloaded node sheds the file it locally serves the most).
#include "bench_common.hpp"

#include "lesslog/baseline/policy.hpp"
#include "lesslog/sim/catalog.hpp"

int main(int argc, char** argv) {
  using namespace lesslog;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const std::vector<double> skews{0.0, 0.5, 0.8, 1.1};

  sim::CatalogConfig base;
  base.m = args.quick ? 8 : 10;
  base.files = 64;
  base.total_rate = args.quick ? 4000.0 : 16000.0;
  base.capacity = 100.0;

  std::cout << "== Ablation A7: Zipf catalog (" << base.files
            << " files, m=" << base.m << ", " << base.total_rate
            << " req/s total) ==\n\n";

  sim::FigureData fig("A7 catalog balance vs popularity skew", "zipf s",
                      skews);
  std::vector<double> replicas;
  std::vector<double> logbased_replicas;
  std::vector<double> head_share;
  std::vector<double> copies_per_file;
  for (const double s : skews) {
    double rep_total = 0.0;
    double log_total = 0.0;
    double head_total = 0.0;
    double copies_total = 0.0;
    for (int seed = 1; seed <= args.seeds; ++seed) {
      sim::CatalogConfig cfg = base;
      cfg.zipf_s = s;
      cfg.seed = static_cast<std::uint64_t>(seed);
      const sim::CatalogResult r =
          sim::run_catalog_experiment(cfg, baseline::lesslog_policy());
      bench::check(r.balanced, "catalog cell balances");
      rep_total += r.replicas_created;
      log_total += sim::run_catalog_experiment(
                       cfg, baseline::logbased_policy())
                       .replicas_created;
      int head = 0;
      const std::size_t head_files = cfg.files / 8;  // top 12.5%
      for (std::size_t i = 0; i < head_files; ++i) {
        head += r.replicas_by_rank[i];
      }
      head_total += r.replicas_created > 0
                        ? 100.0 * head / r.replicas_created
                        : 0.0;
      copies_total += static_cast<double>(r.total_copies) / cfg.files;
    }
    replicas.push_back(rep_total / args.seeds);
    logbased_replicas.push_back(log_total / args.seeds);
    head_share.push_back(head_total / args.seeds);
    copies_per_file.push_back(copies_total / args.seeds);
  }
  fig.add_series("total replicas (lesslog)", std::move(replicas));
  fig.add_series("total replicas (log-based)",
                 std::move(logbased_replicas));
  fig.add_series("% replicas on top-12.5% files", std::move(head_share));
  fig.add_series("copies per file", std::move(copies_per_file));
  bench::emit(fig, args);

  bench::check(fig.roughly_increasing("% replicas on top-12.5% files", 3.0),
               "replicas concentrate on the popularity head as skew grows");
  bench::check(fig.find("copies per file")->values.back() <
                   fig.find("copies per file")->values.front() + 4.0,
               "storage overhead stays modest across skews");
  bench::check(fig.dominates("total replicas (log-based)",
                             "total replicas (lesslog)", 0.05),
               "perfect logs need at most ~LessLog's replicas on catalogs "
               "too");
  bench::check(fig.dominates("total replicas (lesslog)",
                             "total replicas (log-based)", 1.0),
               "LessLog stays within ~2x of log-based across skews");
  return 0;
}
