// Ablation A6 — wire-level request latency and message overhead.
//
// Runs the message-driven swarm (encode/decode, per-hop latency with
// jitter, colocated clients) and reports GETFILE latency percentiles and
// per-request message counts as the system grows, for b = 0 and b = 2,
// plus the effect of packet loss with client retries. The direct-call
// fluid solver cannot see any of this; the protocol layer exists exactly
// for these numbers.
//
// Cells are independent swarms, so they run on the shared thread pool
// (--threads N); results are gathered in cell order, keeping stdout
// byte-identical for every thread count. --smoke runs one tiny lossless
// cell and exits nonzero unless requests were actually served with no
// undeliverable packets — the ctest wire-path gate.
#include <algorithm>
#include <chrono>

#include "bench_common.hpp"

#include "lesslog/proto/swarm.hpp"
#include "lesslog/util/stats.hpp"

namespace {

using namespace lesslog;

struct Cell {
  double p50 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double msgs_per_get = 0.0;
  double fault_pct = 0.0;
  obs::Snapshot snap;  ///< the cell swarm's final metric snapshot
};

/// Tail percentile (ms) from the cell's client.get_latency histogram —
/// octave resolution, but derived from the same obs cells a deployment
/// would scrape. 0 when metrics are compiled out (LESSLOG_NO_METRICS).
double hist_pct_ms(const obs::Snapshot& snap, double pct) {
  const obs::LatencyHistogram* h = snap.histogram("client.get_latency");
  return h != nullptr ? 1000.0 * h->percentile(pct) : 0.0;
}

proto::Swarm::Config cell_config(int m, int b, double drop,
                                 std::uint64_t seed) {
  proto::Swarm::Config cfg;
  cfg.m = m;
  cfg.b = b;
  cfg.nodes = util::space_size(m);
  cfg.seed = seed;
  cfg.net.base_latency = 0.010;
  cfg.net.jitter = 0.005;
  cfg.net.drop_probability = drop;
  cfg.client.timeout = 0.25;
  cfg.client.max_retries = 5;
  return cfg;
}

/// Inserts the 32-file catalog and returns it; `rng` continues to drive
/// the request mix afterwards.
std::vector<std::pair<core::FileId, core::Pid>> build_catalog(
    proto::Swarm& swarm, int m, util::Rng& rng) {
  std::vector<std::pair<core::FileId, core::Pid>> files;
  for (std::uint64_t i = 0; i < 32; ++i) {
    const core::FileId f{0x5EED0000ULL + i};
    const core::Pid target{
        static_cast<std::uint32_t>(rng.bounded(util::space_size(m)))};
    files.emplace_back(f, target);
    swarm.insert(f, target, core::Pid{0});
  }
  swarm.settle();
  return files;
}

Cell run_cell(int m, int b, double drop, int requests, std::uint64_t seed) {
  proto::Swarm swarm(cell_config(m, b, drop, seed));
  util::Rng rng(seed ^ 0xF00DULL);
  const auto files = build_catalog(swarm, m, rng);

  const std::int64_t msgs_before = swarm.network().messages_sent();
  for (int i = 0; i < requests; ++i) {
    const auto& [f, target] = files[rng.bounded(files.size())];
    const core::Pid at{
        static_cast<std::uint32_t>(rng.bounded(util::space_size(m)))};
    swarm.get(f, target, at);
  }
  swarm.settle();

  Cell cell;
  std::vector<double> lat = swarm.all_latencies();
  std::sort(lat.begin(), lat.end());
  cell.p50 = 1000.0 * util::percentile_sorted(lat, 50.0);
  cell.p99 = 1000.0 * util::percentile_sorted(lat, 99.0);
  cell.p999 = 1000.0 * util::percentile_sorted(lat, 99.9);
  cell.msgs_per_get = static_cast<double>(swarm.network().messages_sent() -
                                          msgs_before) /
                      requests;
  cell.fault_pct = 100.0 * static_cast<double>(swarm.total_faults()) /
                   requests;
  cell.snap = swarm.registry().snapshot(swarm.engine().now());
  return cell;
}

/// One small lossless cell as a pass/fail gate: the wire path must serve
/// real traffic (peers report served requests) and every encoded packet
/// must decode and land on an attached handler (zero undeliverable).
int run_smoke(const bench::BenchArgs& args) {
  constexpr int kM = 6;
  constexpr int kRequests = 200;
  proto::Swarm swarm(cell_config(kM, 0, /*drop=*/0.0, /*seed=*/42));
  // Sample the registry through the run so the smoke's --metrics document
  // carries a time-series alongside the final totals.
  swarm.enable_metrics_sampling(/*interval=*/0.05, /*stop_at=*/2.0);
  util::Rng rng(42ULL ^ 0xF00DULL);
  const auto files = build_catalog(swarm, kM, rng);
  for (int i = 0; i < kRequests; ++i) {
    const auto& [f, target] = files[rng.bounded(files.size())];
    const core::Pid at{
        static_cast<std::uint32_t>(rng.bounded(util::space_size(kM)))};
    swarm.get(f, target, at);
  }
  swarm.settle();
  std::int64_t served = 0;
  for (std::uint32_t p = 0; p < util::space_size(kM); ++p) {
    served += swarm.peer(core::Pid{p}).served();
  }
  const std::int64_t undeliverable = swarm.network().undeliverable();
  const std::int64_t faults = swarm.total_faults();
  const bool ok = served > 0 && undeliverable == 0 && faults == 0;
  std::cout << "wire smoke: requests=" << kRequests << " served=" << served
            << " undeliverable=" << undeliverable << " faults=" << faults
            << " -> " << (ok ? "PASS" : "FAIL") << "\n";
  const obs::TimeSeries& series = swarm.metrics_series();
  const int metrics_rc = bench::emit_metrics(
      args, "abl_latency", 42, swarm.registry().snapshot(swarm.engine().now()),
      series.empty() ? nullptr : &series);
  return (ok && metrics_rc == 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lesslog;
  const auto t0 = std::chrono::steady_clock::now();
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  if (args.smoke) return run_smoke(args);
  const int requests = args.quick ? 500 : 4000;
  const std::vector<int> widths = args.quick ? std::vector<int>{6, 8}
                                             : std::vector<int>{4, 6, 8, 10};
  const std::vector<double> drops{0.0, 0.1};

  std::cout << "== Ablation A6: wire-level GETFILE latency (10 ms links "
               "+ 0-5 ms jitter) ==\n"
            << requests << " requests per cell, 32-file catalog\n\n";

  // Flatten drop x m x {b=0, b=2} into one independent cell list.
  struct Key {
    double drop;
    int m;
    int b;
  };
  std::vector<Key> keys;
  for (const double drop : drops) {
    for (const int m : widths) {
      keys.push_back({drop, m, 0});
      keys.push_back({drop, m, 2});
    }
  }
  const std::vector<Cell> cells = bench::run_cells_parallel(
      args.threads, keys.size(), [&](std::size_t i) {
        const Key& k = keys[i];
        return run_cell(k.m, k.b, k.drop, requests, 42);
      });

  std::vector<bench::WireRow> rows;
  std::size_t next = 0;
  for (const double drop : drops) {
    std::vector<double> xs;
    for (const int m : widths) xs.push_back(static_cast<double>(m));
    sim::FigureData fig(
        "A6 latency/overhead (loss " +
            std::to_string(static_cast<int>(drop * 100)) + "%)",
        "m (N = 2^m)", xs);
    std::vector<double> p50_b0;
    std::vector<double> p99_b0;
    std::vector<double> msgs_b0;
    std::vector<double> p50_b2;
    std::vector<double> faults;
    for (const int m : widths) {
      const Cell& b0 = cells[next++];
      const Cell& b2 = cells[next++];
      p50_b0.push_back(b0.p50);
      p99_b0.push_back(b0.p99);
      msgs_b0.push_back(b0.msgs_per_get);
      p50_b2.push_back(b2.p50);
      faults.push_back(b0.fault_pct);
      for (const auto* c : {&b0, &b2}) {
        rows.push_back(bench::WireRow{
            "abl_latency",
            "drop=" + std::to_string(static_cast<int>(drop * 100)) +
                "%,m=" + std::to_string(m) +
                ",b=" + std::to_string(c == &b0 ? 0 : 2),
            {{"p50_ms", c->p50},
             {"p99_ms", c->p99},
             {"p999_ms", c->p999},
             {"p99_hist_ms", hist_pct_ms(c->snap, 99.0)},
             {"p999_hist_ms", hist_pct_ms(c->snap, 99.9)},
             {"msgs_per_get", c->msgs_per_get},
             {"fault_pct", c->fault_pct}}});
      }
    }
    fig.add_series("p50 ms (b=0)", std::move(p50_b0));
    fig.add_series("p99 ms (b=0)", std::move(p99_b0));
    fig.add_series("p50 ms (b=2)", std::move(p50_b2));
    fig.add_series("msgs/get (b=0)", std::move(msgs_b0));
    fig.add_series("faults % (b=0)", std::move(faults));
    bench::emit(fig, args);

    bench::check(fig.roughly_increasing("p50 ms (b=0)", 5.0),
                 "latency grows ~logarithmically with N");
    // Worst case per leg: (m+2) messages at 15 ms each; under loss the
    // client may burn its full retry budget (max_retries x 250 ms timeout)
    // before the successful leg.
    const double budget =
        (static_cast<double>(widths.back()) + 2.0) * 15.0 +
        (drop > 0.0 ? 5.0 * 250.0 + 100.0 : 0.5);
    bench::check(fig.find("p99 ms (b=0)")->values.back() < budget,
                 "p99 bounded by hop latency plus the client retry budget");
    if (drop == 0.0) {
      bench::check(fig.find("faults % (b=0)")->values.back() == 0.0,
                   "no faults on a lossless network");
    } else {
      bench::check(fig.find("faults % (b=0)")->values.back() < 2.0,
                   "client retries mask 10% packet loss (<2% faults)");
    }
  }
  if (args.json.has_value()) {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    bench::write_wire_json(*args.json, args, rows, wall_ms);
  }
  // Swarm-wide totals across every cell, merged in cell-index order so
  // the document is identical for every --threads value.
  obs::Snapshot merged;
  for (const Cell& c : cells) merged.merge_from(c.snap);
  return bench::emit_metrics(args, "abl_latency", 42, merged);
}
