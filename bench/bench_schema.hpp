// The versioned machine-readable bench document ("lesslog.bench" v1).
//
// Every bench's --json output — solve-family (figure reproductions over
// the fluid solver) and wire-family (packet-level swarm runs) alike —
// goes through this one emitter, so downstream tooling parses a single
// shape with shared field names:
//
//   {
//     "schema": "lesslog.bench", "version": 1,
//     "bench": "<binary>", "family": "wire" | "solve",
//     "seed": N, "seeds": N, "threads": N, "quick": bool,
//     "solver": "scratch" | "incremental" | "",
//     "wall_ms": X,
//     "rows": [
//       {"bench": "...", "cell": "...",
//        "tags": {"<name>": "<string>", ...},      // optional
//        "metrics": {"<name>": X, ...}},
//       ...
//     ]
//   }
//
// parse() is the exact inverse of write() (round-trip tested), so benches
// can validate the very bytes they just wrote.
#pragma once

#include <iomanip>
#include <limits>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lesslog/util/minijson.hpp"

namespace lesslog::bench {

inline constexpr std::string_view kBenchSchemaName = "lesslog.bench";
inline constexpr int kBenchSchemaVersion = 1;

/// One result row: a named cell with optional string tags and its numeric
/// outputs under "metrics".
struct SchemaRow {
  std::string bench;
  std::string cell;
  std::vector<std::pair<std::string, std::string>> tags;
  std::vector<std::pair<std::string, double>> metrics;

  friend bool operator==(const SchemaRow&, const SchemaRow&) = default;
};

struct JsonSchema {
  std::string bench;   ///< emitting binary
  std::string family;  ///< "wire" (packet-level) or "solve" (fluid solver)
  std::uint64_t seed = 0;  ///< base seed (wire cells), 0 when seeds-swept
  int seeds = 0;           ///< averaging width (solve cells)
  int threads = 0;
  bool quick = false;
  std::string solver;  ///< solve family only; empty otherwise
  double wall_ms = 0.0;
  std::vector<SchemaRow> rows;

  void write(std::ostream& out) const;
  [[nodiscard]] static std::optional<JsonSchema> parse(std::string_view text);

  friend bool operator==(const JsonSchema&, const JsonSchema&) = default;
};

namespace schema_detail {

inline void write_escaped(std::ostream& out, std::string_view s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
}

/// Doubles are written with max_digits10 so parse() recovers the exact
/// value (round-trip identity is what the schema test asserts).
inline void write_double(std::ostream& out, double v) {
  std::ostringstream tmp;
  tmp << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  out << tmp.str();
}

}  // namespace schema_detail

inline void JsonSchema::write(std::ostream& out) const {
  using schema_detail::write_double;
  using schema_detail::write_escaped;
  out << "{\n"
      << "  \"schema\": \"" << kBenchSchemaName << "\",\n"
      << "  \"version\": " << kBenchSchemaVersion << ",\n"
      << "  \"bench\": \"";
  write_escaped(out, bench);
  out << "\",\n  \"family\": \"";
  write_escaped(out, family);
  out << "\",\n  \"seed\": " << seed << ",\n"
      << "  \"seeds\": " << seeds << ",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"solver\": \"";
  write_escaped(out, solver);
  out << "\",\n  \"wall_ms\": ";
  write_double(out, wall_ms);
  out << ",\n  \"rows\": [";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SchemaRow& r = rows[i];
    out << (i == 0 ? "\n" : ",\n") << "    {\"bench\": \"";
    write_escaped(out, r.bench);
    out << "\", \"cell\": \"";
    write_escaped(out, r.cell);
    out << "\"";
    if (!r.tags.empty()) {
      out << ", \"tags\": {";
      for (std::size_t t = 0; t < r.tags.size(); ++t) {
        out << (t == 0 ? "" : ", ") << "\"";
        write_escaped(out, r.tags[t].first);
        out << "\": \"";
        write_escaped(out, r.tags[t].second);
        out << "\"";
      }
      out << "}";
    }
    out << ", \"metrics\": {";
    for (std::size_t v = 0; v < r.metrics.size(); ++v) {
      out << (v == 0 ? "" : ", ") << "\"";
      write_escaped(out, r.metrics[v].first);
      out << "\": ";
      write_double(out, r.metrics[v].second);
    }
    out << "}}";
  }
  out << (rows.empty() ? "" : "\n  ") << "]\n}\n";
}

inline std::optional<JsonSchema> JsonSchema::parse(std::string_view text) {
  namespace mj = util::minijson;
  const std::optional<mj::Value> doc = mj::parse(text);
  if (!doc || !doc->is_object()) return std::nullopt;

  const auto str = [&](const char* key) -> std::optional<std::string> {
    const mj::Value* v = doc->find(key);
    if (v == nullptr || !v->is_string()) return std::nullopt;
    return v->string;
  };
  const auto num = [&](const char* key) -> std::optional<double> {
    const mj::Value* v = doc->find(key);
    if (v == nullptr || !v->is_number()) return std::nullopt;
    return v->number;
  };

  if (str("schema") != std::string(kBenchSchemaName)) return std::nullopt;
  if (num("version") != static_cast<double>(kBenchSchemaVersion)) {
    return std::nullopt;
  }
  const mj::Value* quick = doc->find("quick");
  const mj::Value* rows = doc->find("rows");
  if (quick == nullptr || !quick->is_bool() || rows == nullptr ||
      !rows->is_array()) {
    return std::nullopt;
  }

  JsonSchema out;
  const std::optional<std::string> bench = str("bench");
  const std::optional<std::string> family = str("family");
  const std::optional<std::string> solver = str("solver");
  const std::optional<double> seed = num("seed");
  const std::optional<double> seeds = num("seeds");
  const std::optional<double> threads = num("threads");
  const std::optional<double> wall = num("wall_ms");
  if (!bench || !family || !solver || !seed || !seeds || !threads || !wall) {
    return std::nullopt;
  }
  out.bench = *bench;
  out.family = *family;
  out.solver = *solver;
  out.seed = static_cast<std::uint64_t>(*seed);
  out.seeds = static_cast<int>(*seeds);
  out.threads = static_cast<int>(*threads);
  out.quick = quick->boolean;
  out.wall_ms = *wall;

  for (const mj::Value& row : rows->array) {
    if (!row.is_object()) return std::nullopt;
    SchemaRow r;
    const mj::Value* rbench = row.find("bench");
    const mj::Value* rcell = row.find("cell");
    const mj::Value* rmetrics = row.find("metrics");
    if (rbench == nullptr || !rbench->is_string() || rcell == nullptr ||
        !rcell->is_string() || rmetrics == nullptr ||
        !rmetrics->is_object()) {
      return std::nullopt;
    }
    r.bench = rbench->string;
    r.cell = rcell->string;
    if (const mj::Value* rtags = row.find("tags")) {
      if (!rtags->is_object()) return std::nullopt;
      for (const auto& [name, value] : rtags->object) {
        if (!value.is_string()) return std::nullopt;
        r.tags.emplace_back(name, value.string);
      }
    }
    for (const auto& [name, value] : rmetrics->object) {
      if (!value.is_number()) return std::nullopt;
      r.metrics.emplace_back(name, value.number);
    }
    out.rows.push_back(std::move(r));
  }
  return out;
}

}  // namespace lesslog::bench
