// Ablation A4 — the halving guarantee.
//
// Section 2: "each replication is guaranteed to reduce the workload of the
// overloaded node by half if requests are evenly distributed." This
// ablation measures the load reduction of the FIRST LessLog replication at
// the target node across ID-space widths, then contrasts with the expected
// reduction of a random placement (which only absorbs its own subtree's
// catchment) and with the skewed-workload case where the guarantee's
// premise fails.
#include "bench_common.hpp"

#include "lesslog/baseline/policy.hpp"
#include "lesslog/core/find_live_node.hpp"
#include "lesslog/core/replication.hpp"

int main(int argc, char** argv) {
  using namespace lesslog;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const std::vector<int> widths{4, 6, 8, 10, 12};

  std::cout << "== Ablation A4: first-replication load reduction at the "
               "target ==\n\n";

  std::vector<double> xs;
  for (int m : widths) xs.push_back(static_cast<double>(m));
  sim::FigureData fig("A4 target load fraction after one replication",
                      "m (N = 2^m)", xs);

  std::vector<double> lesslog_frac;
  std::vector<double> random_frac;
  std::vector<double> skewed_frac;
  for (const int m : widths) {
    const std::uint32_t slots = util::space_size(m);
    const core::Pid target{slots - 1u};
    const core::LookupTree tree(m, target);
    util::StatusWord live(m, slots);
    const sim::Workload uniform =
        sim::uniform_workload(util::BorrowedView(live), 100.0 * slots);

    // LessLog: replicate to the children-list head.
    sim::CopyMap copies(slots, 0);
    copies[target.value()] = 1;
    const double before =
        sim::solve_load(tree, copies, live, uniform).served[target.value()];
    {
      util::Rng rng(1);
      const auto placement = core::replicate_target(
          tree, target, live,
          [&copies](core::Pid p) { return copies[p.value()] != 0; }, rng);
      sim::CopyMap after = copies;
      after[placement->target.value()] = 1;
      lesslog_frac.push_back(
          sim::solve_load(tree, after, live, uniform).served[target.value()] /
          before);
    }
    // Random: average over placements.
    {
      util::Rng rng(2);
      double total = 0.0;
      const int trials = 64;
      for (int t = 0; t < trials; ++t) {
        sim::CopyMap after = copies;
        for (;;) {
          const auto p = static_cast<std::uint32_t>(rng.bounded(slots));
          if (after[p] == 0) {
            after[p] = 1;
            break;
          }
        }
        total += sim::solve_load(tree, after, live, uniform)
                     .served[target.value()] /
                 before;
      }
      random_frac.push_back(total / trials);
    }
    // Skewed demand (all load from the leaf of VID 0..01, which is NOT in
    // the head child's subtree): halving premise broken, no reduction.
    {
      sim::Workload skew;
      skew.rate.assign(slots, 0.0);
      skew.rate[tree.pid_of(core::Vid{1}).value()] = 100.0 * slots;
      const double skew_before =
          sim::solve_load(tree, copies, live, skew).served[target.value()];
      util::Rng rng(3);
      const auto placement = core::replicate_target(
          tree, target, live,
          [&copies](core::Pid p) { return copies[p.value()] != 0; }, rng);
      sim::CopyMap after = copies;
      after[placement->target.value()] = 1;
      skewed_frac.push_back(
          sim::solve_load(tree, after, live, skew).served[target.value()] /
          skew_before);
    }
  }
  fig.add_series("lesslog (uniform)", std::move(lesslog_frac));
  fig.add_series("random mean (uniform)", std::move(random_frac));
  fig.add_series("lesslog (one-leaf skew)", std::move(skewed_frac));
  bench::emit(fig, args);

  bool exact_half = true;
  for (const double f : fig.find("lesslog (uniform)")->values) {
    exact_half = exact_half && std::abs(f - 0.5) < 1e-9;
  }
  bench::check(exact_half,
               "LessLog's first replication halves the target's load "
               "exactly under even distribution (Section 2 guarantee)");
  bench::check(fig.dominates("lesslog (uniform)", "random mean (uniform)"),
               "a random placement sheds less than LessLog's choice");
  bool no_reduction = true;
  for (const double f : fig.find("lesslog (one-leaf skew)")->values) {
    no_reduction = no_reduction && std::abs(f - 1.0) < 1e-9;
  }
  bench::check(no_reduction,
               "under adversarial skew the first replication sheds nothing "
               "— the guarantee's even-distribution premise is necessary");
  return 0;
}
