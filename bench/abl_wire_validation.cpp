// Ablation A9 — methodology cross-validation.
//
// The figure benches use the deterministic fluid solver (DESIGN.md §3).
// This ablation re-runs Figure 5 cells on the wire-level swarm instead:
// 1024 real peers, Poisson request arrivals, datagram routing with
// latency, and the *autonomous* closed-loop controller (each peer sheds
// its hottest file when its own window counter exceeds capacity). If the
// fluid substitution is sound, the packet-level run must settle on a
// replica count of the same magnitude and leave no peer overloaded.
//
// Each rate is one independent cell (fluid solve + packet-level run), so
// the cells run on the shared thread pool (--threads N) and are gathered
// in rate order — stdout stays byte-identical for every thread count.
#include <chrono>

#include "bench_common.hpp"

#include "lesslog/baseline/policy.hpp"
#include "lesslog/proto/swarm.hpp"

namespace {

using namespace lesslog;

struct WireCell {
  int replicas = 0;
  double worst_final_window = 0.0;  // served req/s in the last window
  std::int64_t faults = 0;
  obs::Snapshot snap;  ///< the cell swarm's final metric snapshot
};

WireCell run_wire(double rate, double capacity, double duration,
                  std::uint64_t seed) {
  proto::Swarm::Config cfg;
  cfg.m = 10;
  cfg.b = 0;
  cfg.nodes = 1024;
  cfg.seed = seed;
  cfg.net.base_latency = 0.002;
  cfg.net.jitter = 0.001;
  proto::Swarm swarm(cfg);

  const core::FileId f = swarm.insert_named(0xF16'5EEDULL + seed, core::Pid{0});
  const core::Pid target = swarm.peer(core::Pid{0}).target_of(f);
  swarm.settle();

  swarm.engine().poisson_process(rate, duration, [&swarm, f, target] {
    const core::Pid at{
        static_cast<std::uint32_t>(swarm.engine().rng().bounded(1024))};
    swarm.get(f, target, at);
  });
  swarm.enable_auto_replication(capacity, /*window=*/1.0, duration);
  swarm.engine().run_until(duration - 1.0);

  // Final measurement window.
  for (std::uint32_t p = 0; p < 1024; ++p) {
    swarm.peer(core::Pid{p}).reset_window();
  }
  swarm.engine().run_until(duration);
  WireCell cell;
  cell.replicas = static_cast<int>(swarm.auto_replicas());
  for (std::uint32_t p = 0; p < 1024; ++p) {
    cell.worst_final_window =
        std::max(cell.worst_final_window,
                 static_cast<double>(swarm.peer(core::Pid{p}).served()));
  }
  swarm.settle();
  cell.faults = swarm.total_faults();
  cell.snap = swarm.registry().snapshot(swarm.engine().now());
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lesslog;
  const auto t0 = std::chrono::steady_clock::now();
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const std::vector<double> rates =
      args.quick ? std::vector<double>{4000.0}
                 : std::vector<double>{4000.0, 12000.0, 20000.0};
  const double capacity = 100.0;
  const double duration = 30.0;

  std::cout << "== Ablation A9: fluid solver vs wire-level swarm "
               "(Figure 5 cells) ==\n"
            << "1024 peers, Poisson arrivals, 1 s control windows, "
            << duration << " s runs\n\n";

  sim::FigureData fig("A9 replicas: fluid prediction vs packet-level run",
                      "requests/s", rates);
  struct RateCell {
    double fluid = 0.0;
    WireCell wire;
  };
  const std::vector<RateCell> cells = bench::run_cells_parallel(
      args.threads, rates.size(), [&](std::size_t i) {
        RateCell out;
        sim::ExperimentConfig cfg = bench::paper_config();
        cfg.total_rate = rates[i];
        cfg.seed = 1;
        out.fluid = static_cast<double>(
            sim::run_replication_experiment(cfg, baseline::lesslog_policy())
                .replicas_created);
        out.wire = run_wire(rates[i], capacity, duration, 1);
        return out;
      });
  std::vector<double> fluid;
  std::vector<double> wire;
  std::vector<double> worst;
  std::vector<double> faults;
  std::vector<bench::WireRow> rows;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const RateCell& cell = cells[i];
    fluid.push_back(cell.fluid);
    wire.push_back(cell.wire.replicas);
    worst.push_back(cell.wire.worst_final_window);
    faults.push_back(static_cast<double>(cell.wire.faults));
    rows.push_back(bench::WireRow{
        "abl_wire_validation",
        "rate=" + std::to_string(static_cast<int>(rates[i])),
        {{"fluid_replicas", cell.fluid},
         {"wire_replicas", static_cast<double>(cell.wire.replicas)},
         {"worst_final_window", cell.wire.worst_final_window},
         {"faults", static_cast<double>(cell.wire.faults)}}});
  }
  fig.add_series("fluid replicas", std::move(fluid));
  fig.add_series("wire replicas", std::move(wire));
  fig.add_series("worst final-window req/s", std::move(worst));
  fig.add_series("faults", std::move(faults));
  bench::emit(fig, args);

  bool same_magnitude = true;
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const double f = fig.find("fluid replicas")->values[i];
    const double w = fig.find("wire replicas")->values[i];
    same_magnitude = same_magnitude && w >= f * 0.5 && w <= f * 3.0;
  }
  bench::check(same_magnitude,
               "packet-level replica counts agree with the fluid solver "
               "within a small factor");
  bool settled = true;
  for (const double w : fig.find("worst final-window req/s")->values) {
    // Poisson windows overshoot a deterministic 100; 2x covers ~6 sigma at
    // these rates.
    settled = settled && w <= capacity * 2.0;
  }
  bench::check(settled, "no peer remains overloaded once the loop settles");
  bench::check(*std::max_element(
                   fig.find("faults")->values.begin(),
                   fig.find("faults")->values.end()) == 0.0,
               "no request faults at any rate");
  if (args.json.has_value()) {
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    bench::write_wire_json(*args.json, args, rows, wall_ms, /*seed=*/1);
  }
  obs::Snapshot merged;
  for (const RateCell& cell : cells) merged.merge_from(cell.wire.snap);
  return bench::emit_metrics(args, "abl_wire_validation", 1, merged);
}
