// Ablation A1 — counter-based replica removal.
//
// The paper repeatedly notes that "a simple counter-based mechanism to
// remove replicas that are not frequently accessed" can further reduce
// LessLog's replica count. This ablation balances the Figure 5 and
// Figure 7 setups with LessLog, then prunes replicas serving below a
// threshold and reports how many survive and whether the system remains
// balanced.
#include "bench_common.hpp"

#include "lesslog/baseline/policy.hpp"

int main(int argc, char** argv) {
  using namespace lesslog;
  const bench::BenchArgs args = bench::BenchArgs::parse(argc, argv);
  const std::vector<double> rates = bench::paper_rates(args.quick);
  util::ThreadPool pool;

  for (const auto& [name, kind] :
       {std::pair<std::string, sim::WorkloadKind>{
            "even distribution", sim::WorkloadKind::kUniform},
        {"locality model", sim::WorkloadKind::kLocality}}) {
    sim::ExperimentConfig base = bench::paper_config();
    base.workload = kind;
    bench::print_header("Ablation A1: counter-based removal, " + name, base,
                        args);

    const std::vector<double> thresholds{0.0, 10.0, 25.0, 50.0};
    sim::FigureData fig("A1 " + name + " (replicas after removal)",
                        "requests/s", rates);
    std::vector<std::vector<double>> ys(
        thresholds.size(), std::vector<double>(rates.size(), 0.0));
    std::vector<double> balanced_frac(rates.size(), 0.0);

    util::parallel_for(pool, rates.size(), [&](std::size_t i) {
      for (std::size_t t = 0; t < thresholds.size(); ++t) {
        double total = 0.0;
        double still = 0.0;
        for (int seed = 1; seed <= args.seeds; ++seed) {
          sim::ExperimentConfig cfg = base;
          cfg.total_rate = rates[i];
          cfg.seed = static_cast<std::uint64_t>(seed);
          const sim::RemovalResult r = sim::run_with_removal(
              cfg, baseline::lesslog_policy(), thresholds[t]);
          total += r.replicas_after_removal;
          still += r.still_balanced ? 1.0 : 0.0;
        }
        ys[t][i] = total / args.seeds;
        if (t + 1 == thresholds.size()) balanced_frac[i] = still / args.seeds;
      }
    });
    for (std::size_t t = 0; t < thresholds.size(); ++t) {
      fig.add_series("threshold " + std::to_string(
                         static_cast<int>(thresholds[t])) + " req/s",
                     std::move(ys[t]));
    }
    bench::BenchArgs emit_args = args;
    if (args.csv.has_value()) {
      emit_args.csv = *args.csv + "." + name + ".csv";
    }
    bench::emit(fig, emit_args);

    bool monotone = true;
    for (std::size_t i = 0; i < rates.size(); ++i) {
      for (std::size_t t = 1; t < thresholds.size(); ++t) {
        monotone = monotone &&
                   fig.series(t).values[i] <= fig.series(t - 1).values[i];
      }
    }
    bench::check(monotone,
                 "higher removal thresholds keep fewer replicas");
    bench::check(fig.dominates(fig.series(1).name, fig.series(0).name),
                 "a modest threshold already removes cold replicas");
  }
  return 0;
}
